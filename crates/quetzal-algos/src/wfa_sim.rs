//! Simulated WFA kernels — the paper's use case 1.
//!
//! The *entire* edit-distance WFA loop (extend phase, termination check,
//! next-wavefront computation) is emitted as one ISA program and
//! executed on the simulated core, at each of the four [`Tier`]s:
//!
//! * `Base` — everything scalar (the autovectorised-baseline stand-in);
//! * `Vec` — the paper's Fig. 2a shape: diagonals across vector lanes,
//!   per-character `gather` loads of both sequences in the extend inner
//!   loop (the memory-indexed bottleneck of §II-G);
//! * `Quetzal` — sequences live in the QBUFFERs; the inner loop reads
//!   characters with 2-cycle `qzload`s instead of ≈20-cycle gathers;
//! * `QuetzalC` — the Fig. 6a shape: one `qzmhm<qzcount>` consumes up to
//!   a whole 64-bit segment (32 bases) per lane per iteration.
//!
//! The wavefront arrays stay in regular memory for every tier (as in the
//! paper: QBUFFERs hold the *input sequences*), so the `next` phase is
//! identical unit-stride vector code in `Vec`/`Quetzal`/`QuetzalC`.

use crate::common::{
    emit_compiled_overhead, emit_qz_stage_pair, stage_bytes, SimOutcome, Tier, OFFSET_REACHABLE,
    OFFSET_SENTINEL,
};
use quetzal::isa::*;
use quetzal::uarch::{RunStats, SimError};
use quetzal::{Machine, Probe};
use quetzal_genomics::distance::myers_distance;
use quetzal_genomics::Alphabet;

/// Failure marker returned when the score cap is exceeded (cannot occur
/// when the cap is sized from the true distance).
const FAILED: u64 = u64::MAX;

/// Sequence encoding selector for the QUETZAL tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SeqEnc {
    /// `qzconf` Esiz field (0 = 2-bit, 1 = 8-bit).
    pub esiz_field: i64,
    /// Mask isolating one element of a `qzload` segment.
    pub char_mask: i64,
    /// Elements per 64-bit segment (count-ALU full-segment value).
    pub seg_full: i64,
}

impl SeqEnc {
    pub(crate) fn for_alphabet(alphabet: Alphabet) -> SeqEnc {
        match alphabet {
            Alphabet::Dna | Alphabet::Rna => SeqEnc {
                esiz_field: 0,
                char_mask: 0b11,
                seg_full: 32,
            },
            Alphabet::Protein => SeqEnc {
                esiz_field: 1,
                char_mask: 0xFF,
                seg_full: 8,
            },
        }
    }
}

/// Execution mode of the WFA kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum KernelMode {
    /// Full alignment: every wavefront kept in an arena for traceback
    /// (O(d²) memory, like the paper's WFA implementation).
    Full,
    /// Bounded search used by BiWFA: two ping-pong wavefront buffers
    /// (O(d) memory); stops and reports the current score once it
    /// exceeds the bound, without traceback.
    Bounded(i64),
}

/// Addresses and bounds handed to the kernel builder.
#[derive(Debug, Clone, Copy)]
struct WfaArgs {
    pa: u64,
    ta: u64,
    plen: usize,
    tlen: usize,
    /// Mid (k = 0) address of wavefront 0 in the arena. Wavefront `s`
    /// lives at `arena_mid + s * stride_bytes`: like the real WFA, every
    /// score's front is kept for traceback, which is what makes the
    /// working set O(d²) and long reads cache-bound (§II-G, Fig. 4).
    arena_mid: u64,
    /// Byte distance between consecutive wavefronts.
    stride_bytes: i64,
    result: u64,
    smax: i64,
    enc: SeqEnc,
    mode: KernelMode,
}

/// Emits the tier-specific extend inner-loop body. On entry, `P5` holds
/// the active lanes (reachable, in bounds), `V0` the text offsets `h`,
/// `V2` the pattern offsets `v`, `V3`/`V4` the PLEN/TLEN splats. The
/// body must advance `V0`/`V2` for matching lanes and leave the
/// still-matching lanes in `P2`.
fn emit_extend_body(b: &mut ProgramBuilder, tier: Tier, args: &WfaArgs) {
    match tier {
        Tier::Base => unreachable!("base tier uses the scalar skeleton"),
        Tier::Vec => {
            // Per-character gathers from both sequences (Fig. 2a).
            b.vgather(V5, X0, V2, P5, ElemSize::B64, MemSize::B1, 1);
            b.vgather(V6, X1, V0, P5, ElemSize::B64, MemSize::B1, 1);
            b.vcmp_vv(BranchCond::Eq, P6, V5, V6, P5, ElemSize::B64);
            b.valu_vi(VAluOp::Add, V0, V0, 1, P6, ElemSize::B64);
            b.valu_vi(VAluOp::Add, V2, V2, 1, P6, ElemSize::B64);
            b.por(P2, P6, P6);
        }
        Tier::Quetzal => {
            // Character reads served by the QBUFFERs (2 cycles instead
            // of ~20), still one character per lane per iteration.
            b.qzload(V5, V2, QBufSel::Q0, P5);
            b.qzload(V6, V0, QBufSel::Q1, P5);
            b.valu_vi(VAluOp::And, V5, V5, args.enc.char_mask, P5, ElemSize::B64);
            b.valu_vi(VAluOp::And, V6, V6, args.enc.char_mask, P5, ElemSize::B64);
            b.vcmp_vv(BranchCond::Eq, P6, V5, V6, P5, ElemSize::B64);
            b.valu_vi(VAluOp::Add, V0, V0, 1, P6, ElemSize::B64);
            b.valu_vi(VAluOp::Add, V2, V2, 1, P6, ElemSize::B64);
            b.por(P2, P6, P6);
        }
        Tier::QuetzalC => {
            // One qzmhm<qzcount> consumes up to a whole segment
            // (32 bases / 8 protein chars) per lane (Fig. 6a).
            b.qzmhm(QzOp::Count, V7, V2, V0, P5);
            // Clamp the count so zero-padding beyond the sequence ends
            // cannot produce spurious matches.
            b.valu_vv(VAluOp::Sub, V8, V3, V2, P5, ElemSize::B64); // PLEN - v
            b.valu_vv(VAluOp::Sub, V9, V4, V0, P5, ElemSize::B64); // TLEN - h
            b.valu_vv(VAluOp::Smin, V7, V7, V8, P5, ElemSize::B64);
            b.valu_vv(VAluOp::Smin, V7, V7, V9, P5, ElemSize::B64);
            b.valu_vv(VAluOp::Add, V0, V0, V7, P5, ElemSize::B64);
            b.valu_vv(VAluOp::Add, V2, V2, V7, P5, ElemSize::B64);
            // A lane continues only if it matched a full segment.
            b.vcmp_vi(BranchCond::Eq, P6, V7, args.enc.seg_full, P5, ElemSize::B64);
            b.por(P2, P6, P6);
        }
    }
}

/// Builds the vectorised WFA program (`Vec`, `Quetzal`, `QuetzalC`).
fn build_vector_program(tier: Tier, args: &WfaArgs) -> Program {
    let mut b = ProgramBuilder::new();
    b.name(format!("wfa-{tier}"));

    if tier.uses_quetzal() {
        emit_qz_stage_pair(
            &mut b,
            args.pa,
            args.plen,
            args.ta,
            args.tlen,
            args.enc.esiz_field,
        );
    }

    // x0 PA, x1 TA, x2 PLEN, x3 TLEN, x4 WA_mid, x5 WB_mid, x6 s,
    // x7 lo, x8 hi, x9 kfin, x10 result, x11 k, x12 addr, x13-x15 tmps,
    // x16 smax, x21 zero.
    b.mov_imm(X0, args.pa as i64);
    b.mov_imm(X1, args.ta as i64);
    b.mov_imm(X2, args.plen as i64);
    b.mov_imm(X3, args.tlen as i64);
    b.mov_imm(X4, args.arena_mid as i64);
    b.mov_imm(X5, args.arena_mid as i64 + args.stride_bytes);
    b.mov_imm(X6, 0);
    b.mov_imm(X7, 0);
    b.mov_imm(X8, 0);
    b.mov_imm(X9, args.tlen as i64 - args.plen as i64);
    b.mov_imm(X10, args.result as i64);
    b.mov_imm(X16, args.smax);
    b.mov_imm(X21, 0);

    let extend_phase = b.label();
    let extend_k_loop = b.label();
    let inner_loop = b.label();
    let extend_done = b.label();
    let check_phase = b.label();
    let next_pre = b.label();
    let next_phase = b.label();
    let next_k_loop = b.label();
    let swap = b.label();
    let fail = b.label();

    // ---- extend phase ----
    b.bind(extend_phase);
    b.alu_ri(SAluOp::Add, X11, X7, 0); // k = lo
    b.bind(extend_k_loop);
    b.branch(BranchCond::Gt, X11, X8, check_phase);
    b.alu_rr(SAluOp::Sub, X13, X8, X11);
    b.alu_ri(SAluOp::Add, X13, X13, 1);
    b.pwhilelt(P1, X13, ElemSize::B64);
    b.alu_ri(SAluOp::Shl, X12, X11, 3);
    b.alu_rr(SAluOp::Add, X12, X4, X12);
    b.vload(V0, X12, P1, ElemSize::B64); // h
    b.index(V1, X11, 1, ElemSize::B64); // k
    b.vcmp_vi(BranchCond::Gt, P2, V0, OFFSET_REACHABLE, P1, ElemSize::B64);
    b.valu_vv(VAluOp::Sub, V2, V0, V1, P1, ElemSize::B64); // v = h - k
    b.dup(V3, X2, ElemSize::B64);
    b.dup(V4, X3, ElemSize::B64);
    b.bind(inner_loop);
    b.vcmp_vv(BranchCond::Lt, P4, V2, V3, P2, ElemSize::B64); // v < PLEN
    b.vcmp_vv(BranchCond::Lt, P5, V0, V4, P4, ElemSize::B64); // h < TLEN
    b.pcount(X13, P5, ElemSize::B64);
    b.branch(BranchCond::Eq, X13, X21, extend_done);
    emit_extend_body(&mut b, tier, args);
    b.jump(inner_loop);
    b.bind(extend_done);
    b.vstore(V0, X12, P1, ElemSize::B64);
    b.alu_ri(SAluOp::Add, X11, X11, 8);
    b.jump(extend_k_loop);

    // ---- termination check ----
    b.bind(check_phase);
    b.branch(BranchCond::Lt, X9, X7, next_pre);
    b.branch(BranchCond::Gt, X9, X8, next_pre);
    b.alu_ri(SAluOp::Shl, X12, X9, 3);
    b.alu_rr(SAluOp::Add, X12, X4, X12);
    b.load(X13, X12, 0, MemSize::B8);
    b.branch(BranchCond::Lt, X13, X3, next_pre);
    b.store(X6, X10, 0, MemSize::B8);
    if args.mode == KernelMode::Full {
        emit_traceback(&mut b, args);
    } else {
        b.halt();
    }

    b.bind(next_pre);
    b.branch(BranchCond::Lt, X6, X16, next_phase);
    b.bind(fail);
    if let KernelMode::Bounded(_) = args.mode {
        // Bound reached: report the score searched so far.
        b.store(X6, X10, 0, MemSize::B8);
    } else {
        b.mov_imm(X13, -1);
        b.store(X13, X10, 0, MemSize::B8);
    }
    b.halt();

    // ---- next-wavefront phase ----
    b.bind(next_phase);
    b.alu_ri(SAluOp::Add, X6, X6, 1);
    b.alu_ri(SAluOp::Sub, X7, X7, 1);
    b.alu_ri(SAluOp::Add, X8, X8, 1);
    b.alu_ri(SAluOp::Add, X11, X7, 0);
    b.dup(V3, X2, ElemSize::B64);
    b.dup(V4, X3, ElemSize::B64);
    b.dup_imm(V10, OFFSET_SENTINEL, ElemSize::B64);
    b.bind(next_k_loop);
    b.branch(BranchCond::Gt, X11, X8, swap);
    b.alu_rr(SAluOp::Sub, X13, X8, X11);
    b.alu_ri(SAluOp::Add, X13, X13, 1);
    b.pwhilelt(P1, X13, ElemSize::B64);
    b.alu_ri(SAluOp::Shl, X12, X11, 3);
    b.alu_rr(SAluOp::Add, X12, X4, X12);
    b.alu_ri(SAluOp::Add, X13, X12, -8);
    b.alu_ri(SAluOp::Add, X14, X12, 8);
    b.vload(V5, X13, P1, ElemSize::B64); // WF[k-1]
    b.vload(V6, X12, P1, ElemSize::B64); // WF[k]
    b.vload(V7, X14, P1, ElemSize::B64); // WF[k+1]
    b.valu_vi(VAluOp::Add, V5, V5, 1, P1, ElemSize::B64);
    b.valu_vi(VAluOp::Add, V6, V6, 1, P1, ElemSize::B64);
    b.valu_vv(VAluOp::Smax, V5, V5, V6, P1, ElemSize::B64);
    b.valu_vv(VAluOp::Smax, V5, V5, V7, P1, ElemSize::B64);
    // Validity: 0 <= best <= TLEN and 0 <= best - k <= PLEN.
    b.index(V1, X11, 1, ElemSize::B64);
    b.valu_vv(VAluOp::Sub, V8, V5, V1, P1, ElemSize::B64); // v
    b.vcmp_vi(BranchCond::Ge, P4, V8, 0, P1, ElemSize::B64);
    b.vcmp_vv(BranchCond::Le, P5, V8, V3, P4, ElemSize::B64);
    b.vcmp_vv(BranchCond::Le, P6, V5, V4, P5, ElemSize::B64);
    b.vcmp_vi(BranchCond::Ge, P6, V5, 0, P6, ElemSize::B64);
    b.vsel(V5, P6, V5, V10, ElemSize::B64);
    b.alu_ri(SAluOp::Shl, X13, X11, 3);
    b.alu_rr(SAluOp::Add, X13, X5, X13);
    b.vstore(V5, X13, P1, ElemSize::B64);
    b.alu_ri(SAluOp::Add, X11, X11, 8);
    b.jump(next_k_loop);

    // ---- advance wavefront storage ----
    b.bind(swap);
    if args.mode == KernelMode::Full {
        // Arena: keep every front for traceback.
        b.alu_ri(SAluOp::Add, X4, X5, 0);
        b.alu_ri(SAluOp::Add, X5, X5, args.stride_bytes);
    } else {
        // Ping-pong the two buffers (O(d) memory).
        b.alu_ri(SAluOp::Add, X13, X4, 0);
        b.alu_ri(SAluOp::Add, X4, X5, 0);
        b.alu_ri(SAluOp::Add, X5, X13, 0);
    }
    b.jump(extend_phase);

    b.build().expect("wfa kernel builds")
}

/// Emits the traceback walk (paper §V-B: traceback time is included in
/// every experiment). Starting from the final wavefront at `x4` with
/// score `x6` and diagonal `x9`, re-traces predecessors through the
/// stored fronts — three scalar loads per score, identical for every
/// tier — and stores a checksum next to the score. Ends in `halt`.
fn emit_traceback(b: &mut ProgramBuilder, args: &WfaArgs) {
    let tb_loop = b.label();
    let tb_done = b.label();
    let k_same = b.label();
    let step_done = b.label();
    b.mov_imm(X21, 0);
    b.alu_ri(SAluOp::Add, X15, X9, 0); // k
    b.mov_imm(X17, 0); // checksum
    b.bind(tb_loop);
    b.branch(BranchCond::Le, X6, X21, tb_done);
    b.alu_ri(SAluOp::Add, X4, X4, -args.stride_bytes);
    b.alu_ri(SAluOp::Sub, X6, X6, 1);
    b.alu_ri(SAluOp::Shl, X12, X15, 3);
    b.alu_rr(SAluOp::Add, X12, X4, X12);
    b.load(X13, X12, -8, MemSize::B8); // prev[k-1]
    b.load(X14, X12, 0, MemSize::B8); // prev[k]
    b.load(X18, X12, 8, MemSize::B8); // prev[k+1]
    b.alu_ri(SAluOp::Add, X13, X13, 1);
    b.alu_ri(SAluOp::Add, X14, X14, 1);
    b.alu_rr(SAluOp::Max, X19, X13, X14);
    b.alu_rr(SAluOp::Max, X19, X19, X18);
    b.alu_rr(SAluOp::Add, X17, X17, X19);
    // Direction: insertion (k+1 path) keeps h; deletion moves k-1.
    b.branch(BranchCond::Eq, X19, X18, k_same);
    b.branch(BranchCond::Eq, X19, X14, step_done);
    b.alu_ri(SAluOp::Sub, X15, X15, 1);
    b.jump(step_done);
    b.bind(k_same);
    b.alu_ri(SAluOp::Add, X15, X15, 1);
    b.bind(step_done);
    b.jump(tb_loop);
    b.bind(tb_done);
    b.store(X17, X10, 8, MemSize::B8);
    b.halt();
}

/// Builds the all-scalar baseline program.
fn build_base_program(args: &WfaArgs) -> Program {
    let mut b = ProgramBuilder::new();
    b.name("wfa-BASE");
    b.mov_imm(X0, args.pa as i64);
    b.mov_imm(X1, args.ta as i64);
    b.mov_imm(X2, args.plen as i64);
    b.mov_imm(X3, args.tlen as i64);
    b.mov_imm(X4, args.arena_mid as i64);
    b.mov_imm(X5, args.arena_mid as i64 + args.stride_bytes);
    b.mov_imm(X6, 0);
    b.mov_imm(X7, 0);
    b.mov_imm(X8, 0);
    b.mov_imm(X9, args.tlen as i64 - args.plen as i64);
    b.mov_imm(X10, args.result as i64);
    b.mov_imm(X16, args.smax);
    b.mov_imm(X20, OFFSET_REACHABLE);

    let extend_phase = b.label();
    let extend_k_loop = b.label();
    let extend_k_next = b.label();
    let inner_loop = b.label();
    let inner_done = b.label();
    let check_phase = b.label();
    let next_pre = b.label();
    let next_phase = b.label();
    let next_k_loop = b.label();
    let k_invalid = b.label();
    let k_store = b.label();
    let swap = b.label();

    // ---- extend (scalar) ----
    b.bind(extend_phase);
    b.alu_ri(SAluOp::Add, X11, X7, 0); // k = lo
    b.bind(extend_k_loop);
    b.branch(BranchCond::Gt, X11, X8, check_phase);
    b.alu_ri(SAluOp::Shl, X12, X11, 3);
    b.alu_rr(SAluOp::Add, X12, X4, X12);
    b.load(X13, X12, 0, MemSize::B8); // h
    b.branch(BranchCond::Lt, X13, X20, extend_k_next); // unreachable
    b.alu_rr(SAluOp::Sub, X14, X13, X11); // v = h - k
    b.bind(inner_loop);
    b.branch(BranchCond::Ge, X14, X2, inner_done); // v >= PLEN
    b.branch(BranchCond::Ge, X13, X3, inner_done); // h >= TLEN
    b.alu_rr(SAluOp::Add, X15, X0, X14);
    b.load(X17, X15, 0, MemSize::B1); // P[v]
    b.alu_rr(SAluOp::Add, X15, X1, X13);
    b.load(X18, X15, 0, MemSize::B1); // T[h]
    b.branch(BranchCond::Ne, X17, X18, inner_done);
    b.alu_ri(SAluOp::Add, X13, X13, 1);
    b.alu_ri(SAluOp::Add, X14, X14, 1);
    emit_compiled_overhead(&mut b, 6);
    b.jump(inner_loop);
    b.bind(inner_done);
    b.store(X13, X12, 0, MemSize::B8);
    b.bind(extend_k_next);
    b.alu_ri(SAluOp::Add, X11, X11, 1);
    b.jump(extend_k_loop);

    // ---- check ----
    b.bind(check_phase);
    b.branch(BranchCond::Lt, X9, X7, next_pre);
    b.branch(BranchCond::Gt, X9, X8, next_pre);
    b.alu_ri(SAluOp::Shl, X12, X9, 3);
    b.alu_rr(SAluOp::Add, X12, X4, X12);
    b.load(X13, X12, 0, MemSize::B8);
    b.branch(BranchCond::Lt, X13, X3, next_pre);
    b.store(X6, X10, 0, MemSize::B8);
    if args.mode == KernelMode::Full {
        emit_traceback(&mut b, args);
    } else {
        b.halt();
    }
    b.bind(next_pre);
    b.branch(BranchCond::Lt, X6, X16, next_phase);
    if let KernelMode::Bounded(_) = args.mode {
        b.store(X6, X10, 0, MemSize::B8);
    } else {
        b.mov_imm(X13, -1);
        b.store(X13, X10, 0, MemSize::B8);
    }
    b.halt();

    // ---- next (scalar) ----
    b.bind(next_phase);
    b.alu_ri(SAluOp::Add, X6, X6, 1);
    b.alu_ri(SAluOp::Sub, X7, X7, 1);
    b.alu_ri(SAluOp::Add, X8, X8, 1);
    b.alu_ri(SAluOp::Add, X11, X7, 0);
    b.bind(next_k_loop);
    b.branch(BranchCond::Gt, X11, X8, swap);
    b.alu_ri(SAluOp::Shl, X12, X11, 3);
    b.alu_rr(SAluOp::Add, X12, X4, X12);
    b.load(X13, X12, -8, MemSize::B8); // WF[k-1]
    b.load(X14, X12, 0, MemSize::B8); // WF[k]
    b.load(X15, X12, 8, MemSize::B8); // WF[k+1]
    b.alu_ri(SAluOp::Add, X13, X13, 1);
    b.alu_ri(SAluOp::Add, X14, X14, 1);
    b.alu_rr(SAluOp::Max, X13, X13, X14);
    b.alu_rr(SAluOp::Max, X13, X13, X15);
    // Validity: 0 <= best <= TLEN, 0 <= best - k <= PLEN.
    b.mov_imm(X18, 0);
    b.branch(BranchCond::Lt, X13, X18, k_invalid);
    b.branch(BranchCond::Gt, X13, X3, k_invalid);
    b.alu_rr(SAluOp::Sub, X17, X13, X11);
    b.branch(BranchCond::Lt, X17, X18, k_invalid);
    b.branch(BranchCond::Gt, X17, X2, k_invalid);
    emit_compiled_overhead(&mut b, 2);
    b.jump(k_store);
    b.bind(k_invalid);
    b.mov_imm(X13, OFFSET_SENTINEL);
    b.bind(k_store);
    b.alu_ri(SAluOp::Shl, X14, X11, 3);
    b.alu_rr(SAluOp::Add, X14, X5, X14);
    b.store(X13, X14, 0, MemSize::B8);
    b.alu_ri(SAluOp::Add, X11, X11, 1);
    b.jump(next_k_loop);

    b.bind(swap);
    if args.mode == KernelMode::Full {
        b.alu_ri(SAluOp::Add, X4, X5, 0);
        b.alu_ri(SAluOp::Add, X5, X5, args.stride_bytes);
    } else {
        b.alu_ri(SAluOp::Add, X13, X4, 0);
        b.alu_ri(SAluOp::Add, X4, X5, 0);
        b.alu_ri(SAluOp::Add, X5, X13, 0);
    }
    b.jump(extend_phase);

    b.build().expect("wfa base kernel builds")
}

/// Errors from the simulated WFA driver.
#[derive(Debug)]
pub enum WfaSimError {
    /// The simulator reported an error.
    Sim(SimError),
    /// The kernel exceeded its score cap (driver bug — the cap is sized
    /// from the true distance).
    ScoreCapExceeded,
}

impl std::fmt::Display for WfaSimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WfaSimError::Sim(e) => write!(f, "simulation error: {e}"),
            WfaSimError::ScoreCapExceeded => f.write_str("wfa kernel exceeded its score cap"),
        }
    }
}

impl std::error::Error for WfaSimError {}

impl From<SimError> for WfaSimError {
    fn from(e: SimError) -> Self {
        WfaSimError::Sim(e)
    }
}

/// Runs the full WFA edit-distance alignment of one pair on the
/// simulated machine at the given tier. Returns the score and the
/// accumulated timing statistics.
///
/// # Errors
///
/// Returns [`WfaSimError`] if the simulation fails.
pub fn wfa_sim<P: Probe>(
    machine: &mut Machine<P>,
    pattern: &[u8],
    text: &[u8],
    alphabet: Alphabet,
    tier: Tier,
) -> Result<SimOutcome, WfaSimError> {
    wfa_sim_with_mode(machine, pattern, text, alphabet, tier, KernelMode::Full)
}

/// Bounded ping-pong WFA search (no traceback): advances wavefronts
/// until alignment completes or the score bound is hit, reporting the
/// score searched. Used by the BiWFA driver for its bidirectional
/// split search.
///
/// # Errors
///
/// Returns [`WfaSimError`] if the simulation fails.
pub fn wfa_sim_bounded<P: Probe>(
    machine: &mut Machine<P>,
    pattern: &[u8],
    text: &[u8],
    alphabet: Alphabet,
    tier: Tier,
    bound: i64,
) -> Result<SimOutcome, WfaSimError> {
    wfa_sim_with_mode(
        machine,
        pattern,
        text,
        alphabet,
        tier,
        KernelMode::Bounded(bound),
    )
}

fn wfa_sim_with_mode<P: Probe>(
    machine: &mut Machine<P>,
    pattern: &[u8],
    text: &[u8],
    alphabet: Alphabet,
    tier: Tier,
    mode: KernelMode,
) -> Result<SimOutcome, WfaSimError> {
    // Size the wavefront arrays from the true distance (the role a
    // host-side `malloc` growth loop would play in a real
    // implementation; not timing-relevant).
    let d = match mode {
        KernelMode::Full => myers_distance(pattern, text) as i64,
        KernelMode::Bounded(b) => b,
    };
    let smax = d + 4;
    let entries = 2 * (smax + 6) as u64 + 16;
    let stride_bytes = 8 * entries as i64;

    let pa = stage_bytes(machine, pattern);
    let ta = stage_bytes(machine, text);
    // Full mode: one wavefront per score, all kept for traceback
    // (O(d²) memory, like the paper's WFA). Bounded mode: two ping-pong
    // buffers (O(d) memory, like BiWFA's search phase).
    let fronts = match mode {
        KernelMode::Full => smax as u64 + 2,
        KernelMode::Bounded(_) => 2,
    };
    let arena = machine.alloc(8 * entries * fronts);
    let result = machine.alloc(16);
    let mid = (smax + 6) as u64;
    let arena_mid = arena + 8 * mid;
    // Host-side initialisation (the memset a real allocation would do).
    match mode {
        KernelMode::Full => {
            // Only the two sentinel border slots of each front are ever
            // read outside its written range.
            for s in 0..=(smax + 1) {
                let front_mid = arena_mid as i64 + s * stride_bytes;
                for border in [s + 1, s + 2] {
                    machine.write_u64((front_mid + 8 * border) as u64, OFFSET_SENTINEL as u64);
                    machine.write_u64((front_mid - 8 * border) as u64, OFFSET_SENTINEL as u64);
                }
            }
        }
        KernelMode::Bounded(_) => {
            // Ping-pong buffers are reused for every score, so both are
            // fully sentinel-initialised.
            for f in 0..2u64 {
                for i in 0..entries {
                    machine.write_u64(arena + 8 * (f * entries + i), OFFSET_SENTINEL as u64);
                }
            }
        }
    }
    machine.write_u64(arena_mid, 0); // WF[0][0] = 0 (pre-extension)

    let args = WfaArgs {
        pa,
        ta,
        plen: pattern.len(),
        tlen: text.len(),
        arena_mid,
        stride_bytes,
        result,
        smax: match mode {
            KernelMode::Full => smax,
            KernelMode::Bounded(b) => b,
        },
        enc: SeqEnc::for_alphabet(alphabet),
        mode,
    };
    let program = match tier {
        Tier::Base => build_base_program(&args),
        _ => build_vector_program(tier, &args),
    };
    let stats: RunStats = machine.run(&program)?;
    let score = machine.read_u64(result);
    if score == FAILED {
        return Err(WfaSimError::ScoreCapExceeded);
    }
    Ok(SimOutcome {
        value: score as i64,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wfa::wfa_edit_align;
    use quetzal::MachineConfig;
    use quetzal_genomics::dataset::DatasetSpec;

    fn check_pair(pattern: &[u8], text: &[u8], alphabet: Alphabet) {
        let want = wfa_edit_align(pattern, text).score as i64;
        for tier in Tier::all() {
            let mut m = Machine::new(MachineConfig::default());
            let out = wfa_sim(&mut m, pattern, text, alphabet, tier).unwrap();
            assert_eq!(
                out.value,
                want,
                "{tier} on {:?}",
                &pattern[..pattern.len().min(12)]
            );
            assert!(out.stats.cycles > 0);
        }
    }

    #[test]
    fn all_tiers_match_reference_tiny() {
        check_pair(b"ACAG", b"AAGT", Alphabet::Dna);
    }

    #[test]
    fn all_tiers_match_reference_identical() {
        check_pair(b"ACGTACGTACGT", b"ACGTACGTACGT", Alphabet::Dna);
    }

    #[test]
    fn all_tiers_match_reference_dataset_pairs() {
        for pair in DatasetSpec::d100().generate_n(11, 3) {
            check_pair(pair.pattern.as_bytes(), pair.text.as_bytes(), Alphabet::Dna);
        }
    }

    #[test]
    fn all_tiers_match_reference_protein() {
        for pair in DatasetSpec::protein().generate_n(5, 1) {
            // Trim for test speed; protein pairs are highly divergent.
            let p = &pair.pattern.as_bytes()[..120];
            let t = &pair.text.as_bytes()[..120];
            check_pair(p, t, Alphabet::Protein);
        }
    }

    #[test]
    fn all_tiers_handle_length_difference() {
        check_pair(b"ACGTACGTAC", b"ACGT", Alphabet::Dna);
        check_pair(b"ACGT", b"ACGTACGTAC", Alphabet::Dna);
    }

    #[test]
    fn quetzal_c_beats_vec_beats_base() {
        let pair = &DatasetSpec::d250().generate_n(3, 1)[0];
        let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
        let mut cycles = std::collections::HashMap::new();
        for tier in Tier::all() {
            let mut m = Machine::new(MachineConfig::default());
            let out = wfa_sim(&mut m, p, t, Alphabet::Dna, tier).unwrap();
            cycles.insert(tier, out.stats.cycles);
        }
        assert!(
            cycles[&Tier::QuetzalC] < cycles[&Tier::Vec],
            "QUETZAL+C {} must beat VEC {}",
            cycles[&Tier::QuetzalC],
            cycles[&Tier::Vec]
        );
        assert!(
            cycles[&Tier::Quetzal] < cycles[&Tier::Vec],
            "QUETZAL {} must beat VEC {}",
            cycles[&Tier::Quetzal],
            cycles[&Tier::Vec]
        );
    }

    #[test]
    fn vec_reduces_to_fewer_mem_requests_with_quetzal() {
        let pair = &DatasetSpec::d100().generate_n(9, 1)[0];
        let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
        let mut m1 = Machine::new(MachineConfig::default());
        let vec_out = wfa_sim(&mut m1, p, t, Alphabet::Dna, Tier::Vec).unwrap();
        let mut m2 = Machine::new(MachineConfig::default());
        let qz_out = wfa_sim(&mut m2, p, t, Alphabet::Dna, Tier::QuetzalC).unwrap();
        assert!(
            qz_out.stats.mem_requests < vec_out.stats.mem_requests / 2,
            "QUETZAL must slash cache requests: {} vs {}",
            qz_out.stats.mem_requests,
            vec_out.stats.mem_requests
        );
    }
}
