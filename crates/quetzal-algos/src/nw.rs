//! Needleman-Wunsch global alignment (the paper's "parasail" classical
//! DP use case) — scalar reference with full traceback.
//!
//! The simulated anti-diagonal kernels live in [`crate::dp_sim`]; this
//! module provides the `O(n·m)` full-matrix implementation with
//! transcript recovery, used both as the library-facing aligner and the
//! correctness oracle for the kernels.

use crate::common::{SimOutcome, Tier};
use crate::dp_sim::{dp_sim, LinearCosts};
use quetzal::uarch::SimError;
use quetzal::{Machine, Probe};
use quetzal_genomics::cigar::{Cigar, CigarOp};

/// Result of a global alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NwResult {
    /// Optimal linear-gap score (lower is better).
    pub score: i64,
    /// Optimal transcript.
    pub cigar: Cigar,
}

/// Full-matrix Needleman-Wunsch with traceback under linear-gap costs.
///
/// ```
/// use quetzal_algos::nw::nw_align;
/// use quetzal_algos::dp_sim::LinearCosts;
///
/// let r = nw_align(b"ACAG", b"AAGT", LinearCosts::UNIT);
/// assert_eq!(r.score, 2);
/// assert!(r.cigar.validate(b"ACAG", b"AAGT").is_ok());
/// ```
pub fn nw_align(pattern: &[u8], text: &[u8], costs: LinearCosts) -> NwResult {
    let m = pattern.len();
    let n = text.len();
    // Full matrix, row-major: D[i][j] at i*(n+1)+j.
    let w = n + 1;
    let mut dp = vec![0i64; (m + 1) * w];
    for (j, cell) in dp.iter_mut().enumerate().take(n + 1) {
        *cell = j as i64 * costs.gap;
    }
    for i in 1..=m {
        dp[i * w] = i as i64 * costs.gap;
        for j in 1..=n {
            let sub = if pattern[i - 1] == text[j - 1] {
                0
            } else {
                costs.mismatch
            };
            let diag = dp[(i - 1) * w + j - 1] + sub;
            let del = dp[(i - 1) * w + j] + costs.gap; // consume pattern
            let ins = dp[i * w + j - 1] + costs.gap; // consume text
            dp[i * w + j] = diag.min(del).min(ins);
        }
    }
    // Traceback.
    let mut ops = Vec::with_capacity(m + n);
    let (mut i, mut j) = (m, n);
    while i > 0 || j > 0 {
        let here = dp[i * w + j];
        if i > 0 && j > 0 {
            let sub = if pattern[i - 1] == text[j - 1] {
                0
            } else {
                costs.mismatch
            };
            if here == dp[(i - 1) * w + j - 1] + sub {
                ops.push(if sub == 0 {
                    CigarOp::Match
                } else {
                    CigarOp::Mismatch
                });
                i -= 1;
                j -= 1;
                continue;
            }
        }
        if i > 0 && here == dp[(i - 1) * w + j] + costs.gap {
            ops.push(CigarOp::Insertion); // consumes pattern only
            i -= 1;
        } else {
            ops.push(CigarOp::Deletion); // consumes text only
            j -= 1;
        }
    }
    let mut cigar = Cigar::new();
    for &op in ops.iter().rev() {
        cigar.push(op);
    }
    NwResult {
        score: dp[m * w + n],
        cigar,
    }
}

/// Simulated full-matrix NW (score only): thin wrapper over the shared
/// anti-diagonal kernel of [`crate::dp_sim`].
///
/// # Errors
///
/// Returns [`SimError`] on simulation failure.
pub fn nw_sim<P: Probe>(
    machine: &mut Machine<P>,
    pattern: &[u8],
    text: &[u8],
    costs: LinearCosts,
    tier: Tier,
) -> Result<SimOutcome, SimError> {
    dp_sim(machine, pattern, text, costs, None, tier)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quetzal::MachineConfig;
    use quetzal_genomics::cigar::Penalties;
    use quetzal_genomics::dataset::DatasetSpec;
    use quetzal_genomics::distance::{gotoh_score, levenshtein};

    #[test]
    fn unit_costs_equal_levenshtein() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"ACAG", b"AAGT"),
            (b"kitten", b"sitting"),
            (b"", b"AC"),
            (b"AC", b""),
            (b"GATTACA", b"GATTACA"),
        ];
        for &(p, t) in cases {
            let r = nw_align(p, t, LinearCosts::UNIT);
            assert_eq!(r.score, levenshtein(p, t) as i64, "{p:?}");
            r.cigar.validate(p, t).unwrap();
            assert_eq!(r.cigar.edit_distance() as i64, r.score);
        }
    }

    #[test]
    fn custom_costs_match_gotoh_linear() {
        // Linear gaps are affine gaps with zero open cost.
        let costs = LinearCosts {
            mismatch: 3,
            gap: 2,
        };
        let pen = Penalties {
            mismatch: 3,
            gap_open: 0,
            gap_extend: 2,
        };
        for pair in DatasetSpec::d100().generate_n(41, 3) {
            let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
            let r = nw_align(p, t, costs);
            assert_eq!(r.score, gotoh_score(p, t, pen) as i64);
            r.cigar.validate(p, t).unwrap();
        }
    }

    #[test]
    fn sim_wrapper_matches_scalar() {
        let pair = &DatasetSpec::d100().generate_n(43, 1)[0];
        let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
        let want = nw_align(p, t, LinearCosts::UNIT).score;
        let mut m = Machine::new(MachineConfig::default());
        let out = nw_sim(&mut m, p, t, LinearCosts::UNIT, Tier::Vec).unwrap();
        assert_eq!(out.value, want);
    }
}
