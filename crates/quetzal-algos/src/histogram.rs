//! Histogram calculation — QUETZAL beyond genomics (paper §III-E,
//! Fig. 8, and §VII-F).
//!
//! Histogramming is dominated by data-dependent read-modify-write
//! traffic: `hist[bin[i]] += 1`. Vectorising it requires gathers and
//! scatters plus conflict handling; QUETZAL instead keeps the table in
//! a QBUFFER and updates it with `qzupdate<add>` (lane-ordered, so
//! duplicate bins within a vector accumulate correctly).
//!
//! * `Base` — scalar load/increment/store per element;
//! * `Vec` — the standard conflict-free vectorisation: eight private
//!   sub-histograms (one per lane, `table[bin][lane]`), updated with
//!   gather/scatter, then reduced;
//! * `Quetzal` — the table lives in QBUFFER 0 and is updated in place
//!   (Fig. 8), then read out once.

use crate::common::{emit_compiled_overhead, stage_bytes, stage_words, SimOutcome, Tier};
use quetzal::isa::*;
use quetzal::uarch::SimError;
use quetzal::{Machine, Probe};

/// Scalar reference histogram.
pub fn histogram_ref(values: &[u8], bins: usize) -> Vec<u64> {
    let mut h = vec![0u64; bins];
    for &v in values {
        h[v as usize % bins] += 1;
    }
    h
}

fn build_base(in_addr: u64, n: usize, out_addr: u64) -> Program {
    let mut b = ProgramBuilder::new();
    b.name("hist-BASE");
    b.mov_imm(X0, in_addr as i64);
    b.mov_imm(X1, n as i64);
    b.mov_imm(X3, out_addr as i64);
    b.mov_imm(X4, 0);
    let top = b.label();
    let done = b.label();
    b.bind(top);
    b.branch(BranchCond::Ge, X4, X1, done);
    b.alu_rr(SAluOp::Add, X13, X0, X4);
    b.load(X14, X13, 0, MemSize::B1); // bin
    b.alu_ri(SAluOp::Shl, X14, X14, 3);
    b.alu_rr(SAluOp::Add, X14, X3, X14);
    b.load(X15, X14, 0, MemSize::B8);
    b.alu_ri(SAluOp::Add, X15, X15, 1);
    b.store(X15, X14, 0, MemSize::B8);
    emit_compiled_overhead(&mut b, 4);
    b.alu_ri(SAluOp::Add, X4, X4, 1);
    b.jump(top);
    b.bind(done);
    b.halt();
    b.build().expect("hist base builds")
}

fn build_vec(in_addr: u64, n: usize, table8: u64, bins: usize, out_addr: u64) -> Program {
    let mut b = ProgramBuilder::new();
    b.name("hist-VEC");
    b.mov_imm(X0, in_addr as i64);
    b.mov_imm(X1, n as i64);
    b.mov_imm(X2, table8 as i64);
    b.mov_imm(X3, out_addr as i64);
    b.mov_imm(X4, 0);
    b.mov_imm(X21, 0);
    b.ptrue(P0, ElemSize::B64);
    b.index(V2, X21, 1, ElemSize::B64); // lane ids 0..7
    let top = b.label();
    let reduce = b.label();
    let red_loop = b.label();
    let done = b.label();
    b.bind(top);
    b.branch(BranchCond::Ge, X4, X1, reduce);
    b.alu_rr(SAluOp::Sub, X13, X1, X4);
    b.pwhilelt(P1, X13, ElemSize::B64);
    b.alu_rr(SAluOp::Add, X13, X0, X4);
    b.vload_n(V0, X13, P1, ElemSize::B64, MemSize::B1); // bins
                                                        // Private-copy slot: bin*8 + lane (conflict-free within a vector).
    b.valu_vi(VAluOp::Shl, V1, V0, 3, P1, ElemSize::B64);
    b.valu_vv(VAluOp::Add, V1, V1, V2, P1, ElemSize::B64);
    b.vgather(V3, X2, V1, P1, ElemSize::B64, MemSize::B8, 8);
    b.valu_vi(VAluOp::Add, V3, V3, 1, P1, ElemSize::B64);
    b.vscatter(V3, X2, V1, P1, ElemSize::B64, MemSize::B8, 8);
    b.alu_ri(SAluOp::Add, X4, X4, 8);
    b.jump(top);
    // Reduce the eight private copies per bin.
    b.bind(reduce);
    b.mov_imm(X4, 0);
    b.mov_imm(X5, bins as i64);
    b.bind(red_loop);
    b.branch(BranchCond::Ge, X4, X5, done);
    b.alu_ri(SAluOp::Shl, X13, X4, 6); // bin * 64 bytes
    b.alu_rr(SAluOp::Add, X13, X2, X13);
    b.vload(V0, X13, P0, ElemSize::B64);
    b.vreduce(RedOp::Add, X14, V0, P0, ElemSize::B64);
    b.alu_ri(SAluOp::Shl, X13, X4, 3);
    b.alu_rr(SAluOp::Add, X13, X3, X13);
    b.store(X14, X13, 0, MemSize::B8);
    b.alu_ri(SAluOp::Add, X4, X4, 1);
    b.jump(red_loop);
    b.bind(done);
    b.halt();
    b.build().expect("hist vec builds")
}

fn build_qz(in_addr: u64, n: usize, zeros: u64, bins: usize, out_addr: u64) -> Program {
    let mut b = ProgramBuilder::new();
    b.name("hist-QZ");
    b.mov_imm(X26, bins as i64);
    b.mov_imm(X27, bins as i64);
    b.mov_imm(X28, 2); // 64-bit elements
    b.qzconf(X26, X27, X28);
    // Zero the table region (charged staging).
    crate::common::emit_qz_stage_words(&mut b, QBufSel::Q0, zeros, bins);
    b.mov_imm(X0, in_addr as i64);
    b.mov_imm(X1, n as i64);
    b.mov_imm(X3, out_addr as i64);
    b.mov_imm(X4, 0);
    b.ptrue(P0, ElemSize::B64);
    b.dup_imm(V1, 1, ElemSize::B64);
    let top = b.label();
    let readout = b.label();
    let ro_loop = b.label();
    let done = b.label();
    b.bind(top);
    b.branch(BranchCond::Ge, X4, X1, readout);
    b.alu_rr(SAluOp::Sub, X13, X1, X4);
    b.pwhilelt(P1, X13, ElemSize::B64);
    b.alu_rr(SAluOp::Add, X13, X0, X4);
    b.vload_n(V0, X13, P1, ElemSize::B64, MemSize::B1); // bins
                                                        // Update the table directly in the QBUFFER (Fig. 8).
    b.qzupdate(QzOp::Add, V1, V0, QBufSel::Q0, P1);
    b.alu_ri(SAluOp::Add, X4, X4, 8);
    b.jump(top);
    b.bind(readout);
    b.mov_imm(X4, 0);
    b.mov_imm(X5, bins as i64);
    b.bind(ro_loop);
    b.branch(BranchCond::Ge, X4, X5, done);
    b.alu_rr(SAluOp::Sub, X13, X5, X4);
    b.pwhilelt(P1, X13, ElemSize::B64);
    b.index(V2, X4, 1, ElemSize::B64);
    b.qzload(V3, V2, QBufSel::Q0, P1);
    b.alu_ri(SAluOp::Shl, X13, X4, 3);
    b.alu_rr(SAluOp::Add, X13, X3, X13);
    b.vstore(V3, X13, P1, ElemSize::B64);
    b.alu_ri(SAluOp::Add, X4, X4, 8);
    b.jump(ro_loop);
    b.bind(done);
    b.halt();
    b.build().expect("hist qz builds")
}

/// Runs the histogram kernel; the final table lands at the returned
/// address in simulated memory. [`SimOutcome::value`] is the element
/// count processed.
///
/// # Errors
///
/// Returns [`SimError`] on simulation failure.
///
/// # Panics
///
/// Panics (QUETZAL tiers) if `bins` exceeds the QBUFFER's 64-bit
/// element capacity.
pub fn histogram_sim<P: Probe>(
    machine: &mut Machine<P>,
    values: &[u8],
    bins: usize,
    tier: Tier,
) -> Result<(SimOutcome, u64), SimError> {
    let in_addr = stage_bytes(machine, values);
    let out_addr = machine.alloc(8 * bins as u64);
    let program = match tier {
        Tier::Base => build_base(in_addr, values.len(), out_addr),
        Tier::Vec => {
            let table8 = machine.alloc(64 * bins as u64);
            build_vec(in_addr, values.len(), table8, bins, out_addr)
        }
        Tier::Quetzal | Tier::QuetzalC => {
            let cap = machine
                .core()
                .state()
                .qz
                .buf(0)
                .capacity_elems(quetzal::isa::EncSize::E64);
            assert!(bins as u64 <= cap, "histogram table exceeds QBUFFER");
            let zeros = stage_words(machine, &vec![0i64; bins]);
            build_qz(in_addr, values.len(), zeros, bins, out_addr)
        }
    };
    let stats = machine.run(&program)?;
    Ok((
        SimOutcome {
            value: values.len() as i64,
            stats,
        },
        out_addr,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use quetzal::MachineConfig;
    use quetzal_genomics::dataset::SplitMix64;

    fn input(n: usize, bins: usize, seed: u64) -> Vec<u8> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| (rng.below(bins as u64)) as u8).collect()
    }

    #[test]
    fn all_tiers_match_reference() {
        let bins = 64;
        let vals = input(500, bins, 9);
        let want = histogram_ref(&vals, bins);
        for tier in Tier::all() {
            let mut m = Machine::new(MachineConfig::default());
            let (_, out) = histogram_sim(&mut m, &vals, bins, tier).unwrap();
            let got: Vec<u64> = (0..bins).map(|i| m.read_u64(out + 8 * i as u64)).collect();
            assert_eq!(got, want, "{tier}");
        }
    }

    #[test]
    fn duplicate_heavy_input_accumulates() {
        // All elements in one bin: the worst conflict case.
        let vals = vec![3u8; 200];
        let want = histogram_ref(&vals, 16);
        for tier in [Tier::Vec, Tier::Quetzal] {
            let mut m = Machine::new(MachineConfig::default());
            let (_, out) = histogram_sim(&mut m, &vals, 16, tier).unwrap();
            let got: Vec<u64> = (0..16).map(|i| m.read_u64(out + 8 * i as u64)).collect();
            assert_eq!(got, want, "{tier}");
        }
    }

    #[test]
    fn quetzal_beats_vec() {
        let vals = input(2000, 128, 13);
        let mut mv = Machine::new(MachineConfig::default());
        let (vec_out, _) = histogram_sim(&mut mv, &vals, 128, Tier::Vec).unwrap();
        let mut mq = Machine::new(MachineConfig::default());
        let (qz_out, _) = histogram_sim(&mut mq, &vals, 128, Tier::Quetzal).unwrap();
        let speedup = vec_out.stats.cycles as f64 / qz_out.stats.cycles as f64;
        assert!(
            speedup > 1.5,
            "QUETZAL histogram should be clearly faster (paper: 3.02x), got {speedup}"
        );
    }

    #[test]
    fn empty_input_yields_zero_table() {
        let mut m = Machine::new(MachineConfig::default());
        let (_, out) = histogram_sim(&mut m, &[], 8, Tier::Vec).unwrap();
        for i in 0..8 {
            assert_eq!(m.read_u64(out + 8 * i), 0);
        }
    }
}
