//! Shouji-style edit-distance approximation filter (Alser et al. 2019),
//! the other pre-alignment filter the paper cites alongside SneakySnake
//! (§I, §II-C). Provided as a library extension; the paper's
//! experiments use SneakySnake, so no simulated kernel is needed here.
//!
//! Shouji slides a small window across the columns of the same
//! diagonal-band grid SneakySnake uses. For every window position it
//! finds the diagonal segment with the most matches and marks those
//! matched columns in a global bit-vector; the unmarked columns after
//! all windows are the estimated edits. Because overlapping windows can
//! each contribute their best diagonal, a column is counted as an edit
//! only if *no* near-band diagonal matches it within any window — which
//! makes the estimate a lower bound on the real edit distance (verified
//! empirically by the property tests below, mirroring the published
//! filter's zero-false-reject design goal).

use crate::sneakysnake::SsVerdict;

/// Window width in columns (the published Shouji uses 4).
pub const SHOUJI_WINDOW: usize = 4;

/// Runs the Shouji-style filter: accepts iff the estimated edit count
/// is at most `threshold`.
///
/// ```
/// use quetzal_algos::shouji::shouji_filter;
///
/// assert!(shouji_filter(b"ACGTACGT", b"ACGTACGT", 0).accepted);
/// assert!(!shouji_filter(b"AAAAAAAA", b"TTTTTTTT", 3).accepted);
/// ```
pub fn shouji_filter(pattern: &[u8], text: &[u8], threshold: u32) -> SsVerdict {
    let n = text.len();
    let plen = pattern.len() as i64;
    let e = threshold as i64;
    if n == 0 {
        // No text to cover: every pattern symbol is an edit.
        let bound = pattern.len() as u32;
        return SsVerdict {
            bound,
            accepted: bound <= threshold,
        };
    }
    // match_grid[k + e][c] = pattern[c + k] == text[c] (within bounds).
    let diags = (2 * e + 1) as usize;
    let mut grid = vec![vec![false; n]; diags];
    for (row, g) in grid.iter_mut().enumerate() {
        let k = row as i64 - e;
        for (c, cell) in g.iter_mut().enumerate() {
            let pi = c as i64 + k;
            *cell = pi >= 0 && pi < plen && pattern[pi as usize] == text[c];
        }
    }
    // Sliding windows: each clears the columns its best diagonal matches.
    let mut covered = vec![false; n];
    let w = SHOUJI_WINDOW.min(n);
    for c0 in 0..=(n - w) {
        let mut best_row = 0;
        let mut best_count = usize::MAX;
        for (row, g) in grid.iter().enumerate() {
            let mismatches = (c0..c0 + w).filter(|&c| !g[c]).count();
            if mismatches < best_count {
                best_count = mismatches;
                best_row = row;
            }
        }
        for c in c0..c0 + w {
            if grid[best_row][c] {
                covered[c] = true;
            }
        }
    }
    let bound = covered.iter().filter(|&&m| !m).count() as u32;
    SsVerdict {
        bound,
        accepted: bound <= threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quetzal_genomics::dataset::{DatasetSpec, SplitMix64};
    use quetzal_genomics::distance::levenshtein;

    #[test]
    fn identical_pair_has_zero_bound() {
        let v = shouji_filter(b"GATTACAGATTACA", b"GATTACAGATTACA", 0);
        assert_eq!(v.bound, 0);
        assert!(v.accepted);
    }

    #[test]
    fn single_substitution_costs_one() {
        let v = shouji_filter(b"ACGTACGT", b"ACCTACGT", 1);
        assert_eq!(v.bound, 1);
        assert!(v.accepted);
    }

    #[test]
    fn shifted_sequences_are_recovered_by_neighbour_diagonals() {
        // One leading insertion: all remaining columns match on k = -1.
        let pattern = b"ACGTACGTACGT";
        let text = b"GACGTACGTACG";
        let v = shouji_filter(pattern, text, 2);
        assert!(v.accepted, "bound {} should be <= 2", v.bound);
    }

    #[test]
    fn random_pairs_are_rejected() {
        let mut rng = SplitMix64::new(3);
        let a: Vec<u8> = (0..120).map(|_| b"ACGT"[rng.below(4) as usize]).collect();
        let b: Vec<u8> = (0..120).map(|_| b"ACGT"[rng.below(4) as usize]).collect();
        assert!(!shouji_filter(&a, &b, 5).accepted);
    }

    #[test]
    fn empty_inputs() {
        assert!(shouji_filter(b"", b"", 0).accepted);
        assert!(!shouji_filter(b"ACG", b"", 2).accepted);
        assert!(shouji_filter(b"ACG", b"", 3).accepted);
    }

    /// The zero-false-reject design goal: on mutated pairs, rejecting at
    /// the true distance (or above) never happens.
    #[test]
    fn never_rejects_within_threshold_on_mutated_pairs() {
        let mut rng = SplitMix64::new(91);
        for trial in 0..150 {
            let len = 20 + (rng.next_u64() % 100) as usize;
            let a: Vec<u8> = (0..len).map(|_| b"ACGT"[rng.below(4) as usize]).collect();
            let mut b = a.clone();
            for _ in 0..rng.below(6) {
                if b.len() < 2 {
                    break;
                }
                let pos = rng.below(b.len() as u64) as usize;
                match rng.below(3) {
                    0 => b[pos] = b"ACGT"[rng.below(4) as usize],
                    1 => b.insert(pos, b"ACGT"[rng.below(4) as usize]),
                    _ => {
                        b.remove(pos);
                    }
                }
            }
            let d = levenshtein(&a, &b);
            let v = shouji_filter(&a, &b, d + 2);
            assert!(
                v.accepted,
                "trial {trial}: rejected a pair with distance {d} at threshold {}",
                d + 2
            );
        }
    }

    #[test]
    fn filters_dataset_batches_like_sneakysnake() {
        use crate::sneakysnake::ss_filter;
        // On realistic batches the two filters should agree on the easy
        // cases (both accept close pairs).
        for pair in DatasetSpec::d100().generate_n(17, 5) {
            let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
            let e = 12;
            let sh = shouji_filter(p, t, e);
            let ss = ss_filter(p, t, e);
            assert!(sh.accepted, "shouji must accept a 4%-error pair");
            assert!(ss.accepted, "sneakysnake must accept a 4%-error pair");
        }
    }
}
