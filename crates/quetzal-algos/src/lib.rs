//! Genome sequence analysis algorithms on the QUETZAL framework.
//!
//! Every algorithm the paper evaluates is implemented three ways:
//!
//! 1. a **scalar reference** in plain Rust — the correctness oracle and
//!    a useful library in its own right;
//! 2. **simulated kernels** at up to four tiers ([`Tier`]):
//!    * [`Tier::Base`] — scalar ISA code, standing in for the paper's
//!      compiler-autovectorised baseline (whose hot loops do not
//!      vectorise, which is exactly why the paper hand-vectorises);
//!    * [`Tier::Vec`] — hand-vectorised SVE-style code using
//!      gather/scatter (the paper's `VEC`);
//!    * [`Tier::Quetzal`] — QBUFFER-accelerated (`qzload`/`qzstore`);
//!    * [`Tier::QuetzalC`] — QBUFFERs plus the count ALU
//!      (`qzmhm<qzcount>`), the paper's `QUETZAL+C`;
//! 3. a **driver** that stages inputs on a [`Machine`](quetzal::Machine),
//!    submits the kernels, and bit-compares the simulated result with
//!    the scalar reference (the paper's validation methodology, §V-B).
//!
//! Algorithms: Wavefront Alignment ([`wfa`], plus the gap-affine mode
//! in [`wfa_affine`]), bidirectional WFA ([`biwfa`]), SneakySnake
//! edit-distance filtering ([`sneakysnake`], plus the Shouji-style
//! filter in [`shouji`]), classical DP alignment ([`nw`], [`swg`]), the
//! combined filter+align pipeline ([`pipeline`]), and the two
//! non-genomics kernels of §VII-F ([`histogram`], [`spmv`]).

pub mod biwfa;
pub mod common;
pub mod dp_sim;
pub mod histogram;
pub mod nw;
pub mod pipeline;
pub mod shouji;
pub mod sneakysnake;
pub mod spmv;
pub mod swg;
pub mod wfa;
pub mod wfa_affine;
pub mod wfa_sim;

pub use common::{SimOutcome, Tier};
