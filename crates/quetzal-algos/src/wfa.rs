//! Wavefront Alignment (WFA) — scalar reference implementation.
//!
//! Edit-distance WFA (Marco-Sola et al., the paper's use case 1): runs
//! in `O(n + d²)` time and `O(d²)` memory, where `d` is the edit
//! distance, and produces the *optimal* alignment — the same score the
//! full Needleman-Wunsch table would give. The simulated kernels in
//! [`crate::wfa_sim`] are validated against this implementation.
//!
//! Wavefront formulation: `WF[s][k]` is the furthest text offset `h`
//! reachable on diagonal `k = h - v` with exactly `s` edits, after
//! greedily extending matches. Recurrence:
//!
//! ```text
//! WF[s+1][k] = extend(max(WF[s][k-1] + 1,   # text-gap  (deletion op)
//!                         WF[s][k]   + 1,   # mismatch
//!                         WF[s][k+1]))      # pattern-gap (insertion op)
//! ```

use quetzal_genomics::cigar::{Cigar, CigarOp};
use quetzal_genomics::distance::common_prefix_len;

/// Result of a WFA alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WfaResult {
    /// Optimal edit distance.
    pub score: u32,
    /// Optimal alignment transcript.
    pub cigar: Cigar,
}

const NONE: i64 = i64::MIN / 4;

/// One wavefront: offsets for diagonals `lo..=hi`.
#[derive(Debug, Clone)]
struct Wavefront {
    lo: i64,
    hi: i64,
    offsets: Vec<i64>,
}

impl Wavefront {
    fn get(&self, k: i64) -> i64 {
        if k < self.lo || k > self.hi {
            NONE
        } else {
            self.offsets[(k - self.lo) as usize]
        }
    }
}

/// Aligns `pattern` against `text` under unit edit costs, returning the
/// optimal distance and transcript.
///
/// ```
/// use quetzal_algos::wfa::wfa_edit_align;
///
/// let r = wfa_edit_align(b"ACAG", b"AAGT");
/// assert_eq!(r.score, 2);
/// assert!(r.cigar.validate(b"ACAG", b"AAGT").is_ok());
/// ```
pub fn wfa_edit_align(pattern: &[u8], text: &[u8]) -> WfaResult {
    let plen = pattern.len() as i64;
    let tlen = text.len() as i64;
    let k_final = tlen - plen;

    // Extend an offset along its diagonal.
    let extend = |k: i64, h: i64| -> i64 {
        if h < 0 {
            return h;
        }
        let v = h - k;
        if v < 0 || v > plen || h > tlen {
            return h;
        }
        h + common_prefix_len(&pattern[v as usize..], &text[h as usize..]) as i64
    };

    let mut fronts: Vec<Wavefront> = Vec::new();
    let h0 = extend(0, 0);
    fronts.push(Wavefront {
        lo: 0,
        hi: 0,
        offsets: vec![h0],
    });

    let mut s = 0usize;
    while fronts[s].get(k_final) < tlen {
        let prev = &fronts[s];
        let lo = prev.lo - 1;
        let hi = prev.hi + 1;
        let mut offsets = Vec::with_capacity((hi - lo + 1) as usize);
        for k in lo..=hi {
            let best = (prev.get(k - 1) + 1)
                .max(prev.get(k) + 1)
                .max(prev.get(k + 1));
            let best = if best < 0 {
                NONE
            } else {
                // An offset is only meaningful while it stays inside the
                // table on its diagonal.
                let v = best - k;
                if v < 0 || v > plen || best > tlen {
                    NONE
                } else {
                    extend(k, best)
                }
            };
            offsets.push(best);
        }
        fronts.push(Wavefront { lo, hi, offsets });
        s += 1;
    }

    // Traceback.
    let mut cigar_rev: Vec<CigarOp> = Vec::new();
    let mut k = k_final;
    let mut h = tlen;
    let mut score = s as i64;
    while score > 0 {
        let prev = &fronts[(score - 1) as usize];
        let from_mismatch = prev.get(k) + 1;
        let from_del = prev.get(k - 1) + 1; // consumes text only
        let from_ins = prev.get(k + 1); // consumes pattern only
        let pre = from_mismatch.max(from_del).max(from_ins);
        // Matches accumulated by extension after reaching `pre`.
        debug_assert!(h >= pre);
        for _ in pre..h {
            cigar_rev.push(CigarOp::Match);
        }
        if pre == from_mismatch {
            cigar_rev.push(CigarOp::Mismatch);
            h = pre - 1;
        } else if pre == from_del {
            cigar_rev.push(CigarOp::Deletion);
            h = pre - 1;
            k -= 1;
        } else {
            cigar_rev.push(CigarOp::Insertion);
            h = pre;
            k += 1;
        }
        score -= 1;
    }
    // Score 0: leading matches on the main diagonal.
    for _ in 0..h {
        cigar_rev.push(CigarOp::Match);
    }

    let mut cigar = Cigar::new();
    for &op in cigar_rev.iter().rev() {
        cigar.push(op);
    }
    WfaResult {
        score: s as u32,
        cigar,
    }
}

/// Score-only WFA (no traceback storage): `O(d)` memory.
pub fn wfa_edit_distance(pattern: &[u8], text: &[u8]) -> u32 {
    let plen = pattern.len() as i64;
    let tlen = text.len() as i64;
    let k_final = tlen - plen;

    let extend = |k: i64, h: i64| -> i64 {
        if h < 0 {
            return h;
        }
        let v = h - k;
        if v < 0 || v > plen || h > tlen {
            return h;
        }
        h + common_prefix_len(&pattern[v as usize..], &text[h as usize..]) as i64
    };

    let mut cur = Wavefront {
        lo: 0,
        hi: 0,
        offsets: vec![extend(0, 0)],
    };
    let mut s = 0u32;
    while cur.get(k_final) < tlen {
        let lo = cur.lo - 1;
        let hi = cur.hi + 1;
        let mut offsets = Vec::with_capacity((hi - lo + 1) as usize);
        for k in lo..=hi {
            let best = (cur.get(k - 1) + 1).max(cur.get(k) + 1).max(cur.get(k + 1));
            let v = best - k;
            let best = if best < 0 || v < 0 || v > plen || best > tlen {
                NONE
            } else {
                extend(k, best)
            };
            offsets.push(best);
        }
        cur = Wavefront { lo, hi, offsets };
        s += 1;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use quetzal_genomics::dataset::{DatasetSpec, SplitMix64};
    use quetzal_genomics::distance::levenshtein;

    #[test]
    fn paper_example() {
        let r = wfa_edit_align(b"ACAG", b"AAGT");
        assert_eq!(r.score, levenshtein(b"ACAG", b"AAGT"));
        r.cigar.validate(b"ACAG", b"AAGT").unwrap();
    }

    #[test]
    fn identical_sequences_score_zero() {
        let r = wfa_edit_align(b"GATTACA", b"GATTACA");
        assert_eq!(r.score, 0);
        assert_eq!(r.cigar.to_string(), "7=");
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(wfa_edit_align(b"", b"").score, 0);
        let r = wfa_edit_align(b"", b"ACG");
        assert_eq!(r.score, 3);
        r.cigar.validate(b"", b"ACG").unwrap();
        let r = wfa_edit_align(b"ACG", b"");
        assert_eq!(r.score, 3);
        r.cigar.validate(b"ACG", b"").unwrap();
    }

    #[test]
    fn score_matches_levenshtein_on_classics() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"kitten", b"sitting"),
            (b"GATTACA", b"GCATGCU"),
            (b"AAAA", b"TTTT"),
            (b"ACGTACGT", b"ACGT"),
        ];
        for &(a, b) in cases {
            let r = wfa_edit_align(a, b);
            assert_eq!(r.score, levenshtein(a, b), "{a:?} vs {b:?}");
            r.cigar.validate(a, b).unwrap();
            assert_eq!(r.cigar.edit_distance(), r.score);
        }
    }

    #[test]
    fn randomised_against_oracle() {
        let mut rng = SplitMix64::new(2024);
        for trial in 0..50 {
            let len = 10 + (rng.next_u64() % 120) as usize;
            let a: Vec<u8> = (0..len).map(|_| b"ACGT"[rng.below(4) as usize]).collect();
            let mut b = a.clone();
            // Random edits.
            for _ in 0..rng.below(8) {
                if b.is_empty() {
                    break;
                }
                let pos = rng.below(b.len() as u64) as usize;
                match rng.below(3) {
                    0 => b[pos] = b"ACGT"[rng.below(4) as usize],
                    1 => b.insert(pos, b"ACGT"[rng.below(4) as usize]),
                    _ => {
                        b.remove(pos);
                    }
                }
            }
            let r = wfa_edit_align(&a, &b);
            assert_eq!(r.score, levenshtein(&a, &b), "trial {trial}");
            r.cigar.validate(&a, &b).unwrap();
            assert_eq!(r.cigar.edit_distance(), r.score, "optimal transcript");
        }
    }

    #[test]
    fn dataset_pairs_align_optimally() {
        for pair in DatasetSpec::d100().generate_n(7, 5) {
            let (a, b) = (pair.pattern.as_bytes(), pair.text.as_bytes());
            let r = wfa_edit_align(a, b);
            assert_eq!(r.score, levenshtein(a, b));
            r.cigar.validate(a, b).unwrap();
        }
    }

    #[test]
    fn score_only_matches_full() {
        let a = b"ACGTACGTAAGG";
        let b = b"ACTTACGAAGGT";
        assert_eq!(wfa_edit_distance(a, b), wfa_edit_align(a, b).score);
    }
}
