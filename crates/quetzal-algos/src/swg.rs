//! Banded Smith-Waterman-Gotoh (the paper's "ksw2" classical DP use
//! case) — scalar gap-affine reference plus the banded simulated kernel.
//!
//! ksw2 computes a *banded global* gap-affine alignment. The scalar
//! reference here implements exactly that (three-state Gotoh recurrence
//! restricted to a band); the simulated kernel reuses the shared
//! anti-diagonal engine of [`crate::dp_sim`] under the linear-gap model
//! (substitution documented in DESIGN.md — the vectorisation structure
//! and memory behaviour, which is what the experiments measure, is the
//! same).

use crate::common::{SimOutcome, Tier};
use crate::dp_sim::{dp_sim, LinearCosts};
use quetzal::uarch::SimError;
use quetzal::{Machine, Probe};
use quetzal_genomics::cigar::Penalties;

/// `i64` infinity for banded cells.
const INF: i64 = 1 << 40;

/// Banded global gap-affine alignment score (lower is better; matches
/// cost 0). Cells with `|i - j| > band` are not computed, exactly like
/// ksw2's `-w` option. Returns `None` when no alignment fits the band.
///
/// ```
/// use quetzal_algos::swg::banded_swg_score;
/// use quetzal_genomics::cigar::Penalties;
///
/// let score = banded_swg_score(b"ACGT", b"ACGT", Penalties::AFFINE_DEFAULT, 8);
/// assert_eq!(score, Some(0));
/// ```
pub fn banded_swg_score(pattern: &[u8], text: &[u8], p: Penalties, band: i64) -> Option<i64> {
    let m = pattern.len() as i64;
    let n = text.len() as i64;
    if (m - n).abs() > band {
        return None;
    }
    let w = (n + 1) as usize;
    // Row-rolling three-state Gotoh restricted to the band.
    let mut m_prev = vec![INF; w];
    let mut i_prev = vec![INF; w];
    let mut d_prev = vec![INF; w];
    m_prev[0] = 0;
    for j in 1..=n {
        if j <= band {
            d_prev[j as usize] = p.gap_open as i64 + j * p.gap_extend as i64;
        }
    }
    let mut m_cur = vec![INF; w];
    let mut i_cur = vec![INF; w];
    let mut d_cur = vec![INF; w];
    for i in 1..=m {
        m_cur.fill(INF);
        i_cur.fill(INF);
        d_cur.fill(INF);
        if i <= band {
            i_cur[0] = p.gap_open as i64 + i * p.gap_extend as i64;
        }
        let jlo = 1.max(i - band);
        let jhi = n.min(i + band);
        for j in jlo..=jhi {
            let ju = j as usize;
            let sub = if pattern[(i - 1) as usize] == text[(j - 1) as usize] {
                0
            } else {
                p.mismatch as i64
            };
            let best_diag = m_prev[ju - 1].min(i_prev[ju - 1]).min(d_prev[ju - 1]);
            m_cur[ju] = (best_diag + sub).min(INF);
            i_cur[ju] = (m_prev[ju] + p.gap_open as i64 + p.gap_extend as i64)
                .min(i_prev[ju] + p.gap_extend as i64)
                .min(d_prev[ju] + p.gap_open as i64 + p.gap_extend as i64)
                .min(INF);
            d_cur[ju] = (m_cur[ju - 1] + p.gap_open as i64 + p.gap_extend as i64)
                .min(d_cur[ju - 1] + p.gap_extend as i64)
                .min(i_cur[ju - 1] + p.gap_open as i64 + p.gap_extend as i64)
                .min(INF);
        }
        std::mem::swap(&mut m_prev, &mut m_cur);
        std::mem::swap(&mut i_prev, &mut i_cur);
        std::mem::swap(&mut d_prev, &mut d_cur);
    }
    let score = m_prev[n as usize]
        .min(i_prev[n as usize])
        .min(d_prev[n as usize]);
    (score < INF / 2).then_some(score)
}

/// Chooses a ksw2-like band width for a read length (a small fraction of
/// the length, floored for very short reads).
pub fn default_band(read_len: usize) -> i64 {
    ((read_len / 10) as i64).max(16)
}

/// Simulated banded SW (score only, linear-gap model) via the shared
/// anti-diagonal kernel.
///
/// # Errors
///
/// Returns [`SimError`] on simulation failure.
pub fn swg_sim<P: Probe>(
    machine: &mut Machine<P>,
    pattern: &[u8],
    text: &[u8],
    costs: LinearCosts,
    band: i64,
    tier: Tier,
) -> Result<SimOutcome, SimError> {
    dp_sim(machine, pattern, text, costs, Some(band), tier)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp_sim::banded_linear_score;
    use quetzal::MachineConfig;
    use quetzal_genomics::dataset::DatasetSpec;
    use quetzal_genomics::distance::gotoh_score;

    #[test]
    fn wide_band_matches_full_gotoh() {
        for pair in DatasetSpec::d100().generate_n(51, 3) {
            let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
            let pen = Penalties::AFFINE_DEFAULT;
            let banded = banded_swg_score(p, t, pen, 1000).unwrap();
            assert_eq!(banded, gotoh_score(p, t, pen) as i64);
        }
    }

    #[test]
    fn narrow_band_is_an_upper_bound() {
        let pair = &DatasetSpec::d100().generate_n(53, 1)[0];
        let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
        let pen = Penalties::AFFINE_DEFAULT;
        let full = gotoh_score(p, t, pen) as i64;
        let banded = banded_swg_score(p, t, pen, 16).unwrap();
        assert!(banded >= full, "band restricts the search space");
    }

    #[test]
    fn band_too_narrow_for_length_gap_returns_none() {
        assert_eq!(
            banded_swg_score(b"A", b"AAAAAAAAAA", Penalties::AFFINE_DEFAULT, 4),
            None
        );
    }

    #[test]
    fn identical_scores_zero() {
        assert_eq!(
            banded_swg_score(b"GATTACA", b"GATTACA", Penalties::AFFINE_DEFAULT, 4),
            Some(0)
        );
    }

    #[test]
    fn sim_banded_matches_scalar_linear_banded() {
        let pair = &DatasetSpec::d100().generate_n(55, 1)[0];
        let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
        let band = default_band(p.len());
        let want = banded_linear_score(p, t, LinearCosts::UNIT, band).unwrap();
        for tier in [Tier::Base, Tier::Vec, Tier::Quetzal] {
            let mut m = Machine::new(MachineConfig::default());
            let out = swg_sim(&mut m, p, t, LinearCosts::UNIT, band, tier).unwrap();
            assert_eq!(out.value, want, "{tier}");
        }
    }

    #[test]
    fn default_band_scales_with_length() {
        assert_eq!(default_band(100), 16);
        assert_eq!(default_band(10_000), 1000);
    }
}
