//! Gap-affine Wavefront Alignment — the WFA algorithm's primary scoring
//! mode (Marco-Sola et al. 2021), provided as a library extension beyond
//! the edit-distance kernels the experiments use.
//!
//! Three wavefront components evolve per score `s` (penalties: mismatch
//! `x`, gap-open `o`, gap-extend `e`; matches are free):
//!
//! ```text
//! D[s][k] = max(M[s-o-e][k-1], D[s-e][k-1]) + 1   # gap consuming text
//! I[s][k] = max(M[s-o-e][k+1], I[s-e][k+1])       # gap consuming pattern
//! M[s][k] = extend(max(M[s-x][k] + 1, I[s][k], D[s][k]))
//! ```
//!
//! with diagonals `k = h - v` and offsets `h` (text position), matching
//! the convention of [`crate::wfa`]. The implementation is score-only
//! (`O(s²)` memory for the stored fronts) and is validated against the
//! independent full-matrix Gotoh oracle in `quetzal-genomics`.

use quetzal_genomics::cigar::Penalties;
use quetzal_genomics::distance::common_prefix_len;

const NONE: i64 = i64::MIN / 4;

/// One score's three wavefront components over diagonals `lo..=hi`.
#[derive(Debug, Clone)]
struct AffineFront {
    lo: i64,
    hi: i64,
    m: Vec<i64>,
    i: Vec<i64>,
    d: Vec<i64>,
}

impl AffineFront {
    fn new(lo: i64, hi: i64) -> AffineFront {
        let n = (hi - lo + 1) as usize;
        AffineFront {
            lo,
            hi,
            m: vec![NONE; n],
            i: vec![NONE; n],
            d: vec![NONE; n],
        }
    }

    fn get(v: &[i64], lo: i64, hi: i64, k: i64) -> i64 {
        if k < lo || k > hi {
            NONE
        } else {
            v[(k - lo) as usize]
        }
    }

    fn m_at(&self, k: i64) -> i64 {
        Self::get(&self.m, self.lo, self.hi, k)
    }

    fn i_at(&self, k: i64) -> i64 {
        Self::get(&self.i, self.lo, self.hi, k)
    }

    fn d_at(&self, k: i64) -> i64 {
        Self::get(&self.d, self.lo, self.hi, k)
    }
}

/// Computes the optimal gap-affine alignment score of `pattern` vs
/// `text` under `p` (lower is better, matches free), by wavefronts.
///
/// Produces exactly the same score as
/// [`gotoh_score`](quetzal_genomics::distance::gotoh_score) in
/// `O(n + s²)` time instead of `O(n·m)`.
///
/// ```
/// use quetzal_algos::wfa_affine::wfa_affine_score;
/// use quetzal_genomics::cigar::Penalties;
///
/// let p = Penalties::AFFINE_DEFAULT; // x=4, o=6, e=2
/// assert_eq!(wfa_affine_score(b"ACGT", b"ACGT", p), 0);
/// assert_eq!(wfa_affine_score(b"ACGT", b"AGGT", p), 4);      // one mismatch
/// assert_eq!(wfa_affine_score(b"ACGT", b"ACGTTT", p), 10);   // one gap of 2
/// ```
///
/// # Panics
///
/// Panics if `p.gap_extend == 0` and `p.mismatch == 0` (scores would
/// not increase, so the search could not terminate).
pub fn wfa_affine_score(pattern: &[u8], text: &[u8], p: Penalties) -> u32 {
    assert!(
        p.mismatch > 0 || p.gap_extend > 0,
        "degenerate penalties: scores would never grow"
    );
    let plen = pattern.len() as i64;
    let tlen = text.len() as i64;
    if plen == 0 {
        return if tlen == 0 {
            0
        } else {
            p.gap_open + tlen as u32 * p.gap_extend
        };
    }
    if tlen == 0 {
        return p.gap_open + plen as u32 * p.gap_extend;
    }
    let k_final = tlen - plen;
    let x = p.mismatch as i64;
    let oe = (p.gap_open + p.gap_extend) as i64;
    let e = p.gap_extend as i64;

    let extend = |k: i64, h: i64| -> i64 {
        if h < 0 {
            return h;
        }
        let v = h - k;
        if v < 0 || v > plen || h > tlen {
            return h;
        }
        h + common_prefix_len(&pattern[v as usize..], &text[h as usize..]) as i64
    };

    // Clamp an M offset to the table (offsets overshooting the table are
    // unreachable states, exactly as in the edit-distance kernels).
    let valid = |k: i64, h: i64| -> i64 {
        let v = h - k;
        if h < 0 || v < 0 || v > plen || h > tlen {
            NONE
        } else {
            h
        }
    };

    let mut fronts: Vec<AffineFront> = Vec::new();
    let mut f0 = AffineFront::new(0, 0);
    f0.m[0] = extend(0, 0);
    fronts.push(f0);
    if fronts[0].m_at(k_final) >= tlen {
        return 0;
    }

    let mut s = 0usize;
    loop {
        s += 1;
        // Source fronts for this score.
        let src = |delta: i64| -> Option<&AffineFront> {
            let idx = s as i64 - delta;
            if idx < 0 {
                None
            } else {
                fronts.get(idx as usize)
            }
        };
        let lo = [src(x), src(oe), src(e)]
            .iter()
            .flatten()
            .map(|f| f.lo)
            .min()
            .unwrap_or(0)
            - 1;
        let hi = [src(x), src(oe), src(e)]
            .iter()
            .flatten()
            .map(|f| f.hi)
            .max()
            .unwrap_or(0)
            + 1;
        let mut front = AffineFront::new(lo, hi);
        for k in lo..=hi {
            let m_open = src(oe).map_or(NONE, |f| f.m_at(k - 1));
            let d_ext = src(e).map_or(NONE, |f| f.d_at(k - 1));
            let d_new = valid(k, m_open.max(d_ext).max(NONE) + 1);
            let m_open_i = src(oe).map_or(NONE, |f| f.m_at(k + 1));
            let i_ext = src(e).map_or(NONE, |f| f.i_at(k + 1));
            let i_src = m_open_i.max(i_ext);
            let i_new = if i_src <= NONE / 2 {
                NONE
            } else {
                valid(k, i_src)
            };
            let m_sub = src(x).map_or(NONE, |f| f.m_at(k));
            let m_sub = if m_sub <= NONE / 2 {
                NONE
            } else {
                valid(k, m_sub + 1)
            };
            let best = m_sub.max(i_new).max(d_new);
            let idx = (k - lo) as usize;
            front.d[idx] = if d_new <= NONE / 2 { NONE } else { d_new };
            front.i[idx] = i_new;
            front.m[idx] = if best <= NONE / 2 {
                NONE
            } else {
                extend(k, best)
            };
        }
        let done = front.m_at(k_final) >= tlen;
        fronts.push(front);
        if done {
            return s as u32;
        }
        assert!(
            s <= (plen + tlen) as usize * (x.max(oe) as usize + 1),
            "affine WFA failed to terminate (internal error)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quetzal_genomics::dataset::{DatasetSpec, SplitMix64};
    use quetzal_genomics::distance::gotoh_score;

    const P: Penalties = Penalties::AFFINE_DEFAULT;

    #[test]
    fn identical_and_empty_inputs() {
        assert_eq!(wfa_affine_score(b"", b"", P), 0);
        assert_eq!(wfa_affine_score(b"GATTACA", b"GATTACA", P), 0);
        assert_eq!(wfa_affine_score(b"", b"ACG", P), 6 + 3 * 2);
        assert_eq!(wfa_affine_score(b"ACG", b"", P), 6 + 3 * 2);
    }

    #[test]
    fn single_edits() {
        assert_eq!(wfa_affine_score(b"ACGT", b"AGGT", P), 4);
        assert_eq!(wfa_affine_score(b"ACGT", b"ACGTT", P), 8);
        assert_eq!(wfa_affine_score(b"ACGTT", b"ACGT", P), 8);
    }

    #[test]
    fn one_long_gap_beats_scattered_mismatches() {
        // Deleting 3 chars in one gap: o + 3e = 12 < 3 mismatches also 12;
        // check against the oracle rather than assuming.
        let a = b"AAAATTTGGGG";
        let b = b"AAAAGGGG";
        assert_eq!(wfa_affine_score(a, b, P), gotoh_score(a, b, P));
    }

    #[test]
    fn matches_gotoh_on_dataset_pairs() {
        for pair in DatasetSpec::d100().generate_n(81, 5) {
            let (a, b) = (pair.pattern.as_bytes(), pair.text.as_bytes());
            assert_eq!(
                wfa_affine_score(a, b, P),
                gotoh_score(a, b, P),
                "pair disagreed with Gotoh oracle"
            );
        }
    }

    #[test]
    fn matches_gotoh_on_random_penalties_and_inputs() {
        let mut rng = SplitMix64::new(515);
        for trial in 0..40 {
            let pen = Penalties {
                mismatch: 1 + rng.below(6) as u32,
                gap_open: rng.below(8) as u32,
                gap_extend: 1 + rng.below(4) as u32,
            };
            let len = 5 + rng.below(60) as usize;
            let a: Vec<u8> = (0..len).map(|_| b"ACGT"[rng.below(4) as usize]).collect();
            let mut b = a.clone();
            for _ in 0..rng.below(8) {
                if b.is_empty() {
                    break;
                }
                let pos = rng.below(b.len() as u64) as usize;
                match rng.below(3) {
                    0 => b[pos] = b"ACGT"[rng.below(4) as usize],
                    1 => b.insert(pos, b"ACGT"[rng.below(4) as usize]),
                    _ => {
                        b.remove(pos);
                    }
                }
            }
            assert_eq!(
                wfa_affine_score(&a, &b, pen),
                gotoh_score(&a, &b, pen),
                "trial {trial} penalties {pen:?}"
            );
        }
    }

    #[test]
    fn edit_penalties_reduce_to_edit_distance() {
        use quetzal_genomics::distance::levenshtein;
        let pen = Penalties {
            mismatch: 1,
            gap_open: 0,
            gap_extend: 1,
        };
        let a = b"GATTACAGATTACA";
        let b = b"GATTTACAGATACA";
        assert_eq!(wfa_affine_score(a, b, pen), levenshtein(a, b));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_penalties_panic() {
        let pen = Penalties {
            mismatch: 0,
            gap_open: 5,
            gap_extend: 0,
        };
        wfa_affine_score(b"A", b"T", pen);
    }
}
