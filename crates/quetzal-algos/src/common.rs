//! Shared infrastructure for simulated algorithm implementations.

use quetzal::isa::*;
use quetzal::uarch::RunStats;
use quetzal::{Machine, Probe};

/// Implementation tier of a simulated kernel (paper §VII intro).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Scalar ISA code — the compiler-autovectorisation baseline all
    /// speedups are normalised to.
    Base,
    /// Hand-vectorised SVE-style code with gather/scatter (`VEC`).
    Vec,
    /// QBUFFER-accelerated reads, no count ALU (`QUETZAL`).
    Quetzal,
    /// QBUFFERs plus the count ALU (`QUETZAL+C`).
    QuetzalC,
}

impl Tier {
    /// All tiers in evaluation order.
    pub fn all() -> [Tier; 4] {
        [Tier::Base, Tier::Vec, Tier::Quetzal, Tier::QuetzalC]
    }

    /// Whether the tier uses the QUETZAL accelerator.
    pub fn uses_quetzal(self) -> bool {
        matches!(self, Tier::Quetzal | Tier::QuetzalC)
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Tier::Base => "BASE",
            Tier::Vec => "VEC",
            Tier::Quetzal => "QUETZAL",
            Tier::QuetzalC => "QUETZAL+C",
        };
        f.write_str(s)
    }
}

/// Result of simulating an algorithm on one input.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// The algorithm's numeric result (score, edit bound, accept flag, …;
    /// meaning is algorithm-specific).
    pub value: i64,
    /// Accumulated statistics of every kernel the driver submitted.
    pub stats: RunStats,
}

/// Scratch-register conventions shared by the kernels in this crate.
///
/// Drivers stage arguments in `x0..x9`; kernels may clobber everything.
pub mod regs {
    pub use quetzal_isa::reg::aliases::*;
}

/// Sentinel for unreachable wavefront offsets: very negative, far from
/// overflow when incremented once per score.
pub const OFFSET_SENTINEL: i64 = -(1 << 40);

/// Threshold that separates reachable offsets from the sentinel.
pub const OFFSET_REACHABLE: i64 = -(1 << 39);

/// Emits the program prologue that stages a DNA/RNA (or protein) pair
/// into the two QBUFFERs using `qzconf` + a `vload`/`qzencode` loop.
/// The staging time is thereby charged to the QUETZAL implementation,
/// as the paper's methodology requires ("the execution time reported
/// includes the time the algorithm takes to store the input sequences
/// into the QBUFFERs", §V-B).
///
/// Clobbers `x26`, `x27`, `x28`, `v31`, `p7`. `esiz_field` is the
/// `qzconf` element-size encoding (0 = 2-bit, 1 = 8-bit).
pub fn emit_qz_stage_pair(
    b: &mut ProgramBuilder,
    pattern_addr: u64,
    plen: usize,
    text_addr: u64,
    tlen: usize,
    esiz_field: i64,
) {
    b.mov_imm(X26, plen as i64);
    b.mov_imm(X27, tlen as i64);
    b.mov_imm(X28, esiz_field);
    b.qzconf(X26, X27, X28);
    b.ptrue(P7, ElemSize::B8);
    for (sel, addr, len) in [
        (QBufSel::Q0, pattern_addr, plen),
        (QBufSel::Q1, text_addr, tlen),
    ] {
        let mut off = 0usize;
        while off < len {
            b.mov_imm(X26, (addr + off as u64) as i64);
            b.vload(V31, X26, P7, ElemSize::B8);
            b.mov_imm(X27, off as i64);
            b.qzencode(sel, V31, X27);
            off += VLEN_BYTES;
        }
    }
}

/// Emits a loop-free staging sequence that copies `count` 64-bit words
/// from simulated memory at `addr` into QBUFFER `sel` (element size must
/// already be configured to 64-bit). Used by the classical-DP, SpMV and
/// histogram kernels to place lookup tables / vector segments in the
/// buffers. Clobbers `x26`, `x27`, `v31`, `p7`.
pub fn emit_qz_stage_words(b: &mut ProgramBuilder, sel: QBufSel, addr: u64, count: usize) {
    b.ptrue(P7, ElemSize::B64);
    let mut off = 0usize;
    while off < count {
        b.mov_imm(X26, (addr + 8 * off as u64) as i64);
        b.vload(V31, X26, P7, ElemSize::B64);
        b.mov_imm(X27, off as i64);
        b.qzencode(sel, V31, X27);
        off += 8;
    }
}

/// Emits the per-iteration bookkeeping overhead of *compiled* scalar
/// code into a baseline kernel.
///
/// The `Base` tier models the paper's baseline — compiler output for
/// the C implementations — not hand-scheduled assembly. Compiled inner
/// loops of WFA/SneakySnake carry ~15 instructions per character
/// (struct-field address recomputation, bounds bookkeeping, flag
/// materialisation) against the ~9 of our hand-minimal emission, and a
/// large part of it forms a serial dependence chain. This helper emits
/// `n` chained scalar ops on the dedicated scratch register `x29` to
/// account for that (calibration documented in DESIGN.md).
pub fn emit_compiled_overhead(b: &mut ProgramBuilder, n: usize) {
    for _ in 0..n {
        b.alu_ri(SAluOp::Add, X29, X29, 1);
    }
}

/// Stages a byte slice into freshly allocated simulated memory and
/// returns its address.
pub fn stage_bytes<P: Probe>(machine: &mut Machine<P>, bytes: &[u8]) -> u64 {
    let addr = machine.alloc(bytes.len() as u64 + 64);
    machine.write_bytes(addr, bytes);
    addr
}

/// Stages a slice of 64-bit words into simulated memory.
pub fn stage_words<P: Probe>(machine: &mut Machine<P>, words: &[i64]) -> u64 {
    let addr = machine.alloc(8 * words.len() as u64 + 64);
    for (i, &w) in words.iter().enumerate() {
        machine.write_u64(addr + 8 * i as u64, w as u64);
    }
    addr
}

#[cfg(test)]
mod tests {
    use super::*;
    use quetzal::accel::config::QzConfig;
    use quetzal::isa::EncSize;
    use quetzal::MachineConfig;
    use quetzal_genomics::packed::Packed2;
    use quetzal_genomics::Alphabet;

    #[test]
    fn tier_display_and_predicates() {
        assert_eq!(Tier::QuetzalC.to_string(), "QUETZAL+C");
        assert!(Tier::Quetzal.uses_quetzal());
        assert!(!Tier::Vec.uses_quetzal());
        assert_eq!(Tier::all().len(), 4);
    }

    #[test]
    fn qz_stage_pair_encodes_sequences() {
        let mut m = Machine::new(MachineConfig::default());
        let pattern: Vec<u8> = (0..100).map(|i| b"ACGT"[i % 4]).collect();
        let text: Vec<u8> = (0..80).map(|i| b"TGCA"[i % 4]).collect();
        let pa = stage_bytes(&mut m, &pattern);
        let ta = stage_bytes(&mut m, &text);
        let mut b = ProgramBuilder::new();
        emit_qz_stage_pair(&mut b, pa, pattern.len(), ta, text.len(), 0);
        b.halt();
        let stats = m.run(&b.build().unwrap()).unwrap();
        assert!(stats.qz_accesses > 0);
        // Verify buffer contents against the reference packing.
        let packed = Packed2::from_bytes(&pattern, Alphabet::Dna);
        for i in [0usize, 17, 63, 99] {
            assert_eq!(
                m.core()
                    .state()
                    .qz
                    .buf(0)
                    .read_segment(i as u64, EncSize::E2)
                    & 3,
                packed.get(i) as u64,
                "pattern base {i}"
            );
        }
        let packed_t = Packed2::from_bytes(&text, Alphabet::Dna);
        assert_eq!(
            m.core().state().qz.buf(1).read_segment(0, EncSize::E2),
            packed_t.segment(0)
        );
        assert_eq!(m.core().state().qz.esize, EncSize::E2);
        assert_eq!(m.core().state().qz.eb, [100, 80]);
    }

    #[test]
    fn qz_stage_words_round_trip() {
        let mut m = Machine::new(MachineConfig::with_qz(QzConfig::QZ_8P));
        let words: Vec<i64> = (0..40).map(|i| i * 11 - 7).collect();
        let addr = stage_words(&mut m, &words);
        let mut b = ProgramBuilder::new();
        b.mov_imm(X0, 1024).mov_imm(X1, 1024).mov_imm(X2, 2);
        b.qzconf(X0, X1, X2);
        emit_qz_stage_words(&mut b, QBufSel::Q1, addr, words.len());
        b.halt();
        m.run(&b.build().unwrap()).unwrap();
        for (i, &w) in words.iter().enumerate() {
            assert_eq!(
                m.core()
                    .state()
                    .qz
                    .buf(1)
                    .read_segment(i as u64, EncSize::E64) as i64,
                w,
                "word {i}"
            );
        }
    }
}
