//! Simulated classical-DP kernels (paper use case 3, §III-D / Fig. 7).
//!
//! Classical DP algorithms (Needleman-Wunsch, banded Smith-Waterman)
//! compute the table along *anti-diagonals*: every cell of diagonal `d`
//! depends only on diagonals `d-1` and `d-2`, so a diagonal is one
//! vector operation. The text is stored reversed so both character
//! streams are unit-stride.
//!
//! * `Vec` — three rolling diagonal arrays in memory: the new diagonal
//!   is computed from two unit-stride loads of `d-1`, one of `d-2`, and
//!   stored back (the store-load forwarding traffic of Fig. 7 ①②);
//! * `Quetzal` — the rolling diagonals and the widened input characters
//!   live in the QBUFFERs (64-bit elements) and are accessed with
//!   `qzload`/`qzstore` (Fig. 7 ③④). The gain is modest (the paper
//!   reports 1.3–1.4×) because the dependence chain between diagonals,
//!   not access latency, dominates.
//!
//! One builder serves both full-matrix NW and banded SW: the band is
//! just a constraint on each diagonal's cell range. Costs are the
//! linear-gap model (`mismatch` / `gap` costs); the ksw2-style affine
//! scalar reference lives in [`crate::swg`] (substitution documented in
//! DESIGN.md).

use crate::common::{emit_compiled_overhead, stage_bytes, stage_words, SimOutcome, Tier};
use quetzal::isa::*;
use quetzal::uarch::SimError;
use quetzal::{Machine, Probe};

/// Linear-gap DP costs (lower is better; match costs 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinearCosts {
    /// Substitution cost.
    pub mismatch: i64,
    /// Per-symbol gap cost.
    pub gap: i64,
}

impl LinearCosts {
    /// Unit costs — the DP then computes the Levenshtein distance.
    pub const UNIT: LinearCosts = LinearCosts {
        mismatch: 1,
        gap: 1,
    };
}

/// `i64` infinity for DP cells outside the computed region.
pub const DP_INF: i64 = 1 << 40;

/// Scalar reference: banded (or full, when `band` ≥ max length)
/// linear-gap global alignment score over anti-diagonals — the exact
/// computation the simulated kernels perform.
///
/// Returns `None` when no alignment stays within the band.
pub fn banded_linear_score(
    pattern: &[u8],
    text: &[u8],
    costs: LinearCosts,
    band: i64,
) -> Option<i64> {
    let plen = pattern.len();
    let tlen = text.len();
    let mut prev2 = vec![DP_INF; plen + 2];
    let mut prev1 = vec![DP_INF; plen + 2];
    let mut cur = vec![DP_INF; plen + 2];
    // Slot i+1 holds cell i, so i-1 is always addressable.
    prev1[1] = 0; // D[0][0] on diagonal 0
    for d in 1..=(plen + tlen) as i64 {
        cur.fill(DP_INF);
        // Boundary cells.
        if d <= tlen as i64 && d <= band {
            cur[1] = d * costs.gap; // i = 0
        }
        if d <= plen as i64 && d <= band {
            cur[(d + 1) as usize] = d * costs.gap; // j = 0
        }
        let mut ilo = 1.max(d - tlen as i64);
        let mut ihi = (plen as i64).min(d - 1);
        ilo = ilo.max((d - band + 1).div_euclid(2));
        ihi = ihi.min((d + band).div_euclid(2));
        for i in ilo..=ihi {
            let j = d - i;
            let sub = if pattern[(i - 1) as usize] == text[(j - 1) as usize] {
                0
            } else {
                costs.mismatch
            };
            let del = prev1[i as usize] + costs.gap; // from (i-1, j)
            let ins = prev1[(i + 1) as usize] + costs.gap; // from (i, j-1)
            let diag = prev2[i as usize] + sub; // from (i-1, j-1)
            cur[(i + 1) as usize] = del.min(ins).min(diag);
        }
        std::mem::swap(&mut prev2, &mut prev1);
        std::mem::swap(&mut prev1, &mut cur);
    }
    let score = prev1[plen + 1];
    (score < DP_INF / 2).then_some(score)
}

/// Arguments for the kernel builders.
#[derive(Debug, Clone, Copy)]
struct DpArgs {
    pa: u64,
    tra: u64, // reversed text
    plen: usize,
    tlen: usize,
    costs: LinearCosts,
    band: i64,
    result: u64,
    // Vec tier: three diagonal arrays ("i = 0" slot addresses).
    arr: [u64; 3],
    // Quetzal tier: size of one diagonal region inside QBUFFER 1 (in
    // 64-bit elements) and the address of the host-staged INF pool.
    region: i64,
    inf_addr: u64,
}

/// Emits `rd = max(of the scalar expressions already in rd, rn)`.
fn emit_band_range(b: &mut ProgramBuilder, args: &DpArgs) {
    // ilo (x10) = max(1, d - tlen, (d - band + 1) div 2)
    b.mov_imm(X10, 1);
    b.alu_ri(SAluOp::Sub, X13, X7, args.tlen as i64);
    b.alu_rr(SAluOp::Max, X10, X10, X13);
    b.alu_ri(SAluOp::Add, X13, X7, 1 - args.band);
    b.alu_ri(SAluOp::Sar, X13, X13, 1);
    b.alu_rr(SAluOp::Max, X10, X10, X13);
    // ihi (x11) = min(plen, d - 1, (d + band) div 2)
    b.mov_imm(X11, args.plen as i64);
    b.alu_ri(SAluOp::Add, X13, X7, -1);
    b.alu_rr(SAluOp::Min, X11, X11, X13);
    b.alu_ri(SAluOp::Add, X13, X7, args.band);
    b.alu_ri(SAluOp::Sar, X13, X13, 1);
    b.alu_rr(SAluOp::Min, X11, X11, X13);
}

/// Builds the memory-based vectorised kernel (`Vec` tier).
fn build_vec_program(args: &DpArgs) -> Program {
    let mut b = ProgramBuilder::new();
    b.name("dp-VEC");
    b.mov_imm(X0, args.pa as i64);
    b.mov_imm(X1, args.tra as i64);
    b.mov_imm(X2, args.plen as i64);
    b.mov_imm(X3, args.tlen as i64);
    b.mov_imm(X4, args.arr[0] as i64); // prev2
    b.mov_imm(X5, args.arr[1] as i64); // prev1
    b.mov_imm(X6, args.arr[2] as i64); // cur
    b.mov_imm(X7, 1); // d
    b.mov_imm(X8, (args.plen + args.tlen) as i64);
    b.mov_imm(X9, args.result as i64);
    b.mov_imm(X21, 0);
    b.mov_imm(X22, DP_INF);
    b.ptrue(P0, ElemSize::B64);

    let d_loop = b.label();
    let skip_b0 = b.label();
    let skip_bd = b.label();
    let v_loop = b.label();
    let v_done = b.label();
    let finish = b.label();

    b.bind(d_loop);
    b.branch(BranchCond::Gt, X7, X8, finish);
    emit_band_range(&mut b, args);
    // Border sentinels at cur[ilo-1] and cur[ihi+1].
    b.alu_ri(SAluOp::Shl, X13, X10, 3);
    b.alu_rr(SAluOp::Add, X13, X6, X13);
    b.store(X22, X13, -8, MemSize::B8);
    b.alu_ri(SAluOp::Shl, X13, X11, 3);
    b.alu_rr(SAluOp::Add, X13, X6, X13);
    b.store(X22, X13, 8, MemSize::B8);
    // Boundary cells: cur[0] = d*gap when d <= min(tlen, band);
    //                 cur[d] = d*gap when d <= min(plen, band).
    b.mov_imm(X14, args.tlen.min(args.band as usize) as i64);
    b.branch(BranchCond::Gt, X7, X14, skip_b0);
    b.mov_imm(X14, args.costs.gap);
    b.alu_rr(SAluOp::Mul, X14, X14, X7);
    b.store(X14, X6, 0, MemSize::B8);
    b.bind(skip_b0);
    b.mov_imm(X14, args.plen.min(args.band as usize) as i64);
    b.branch(BranchCond::Gt, X7, X14, skip_bd);
    b.mov_imm(X14, args.costs.gap);
    b.alu_rr(SAluOp::Mul, X14, X14, X7);
    b.alu_ri(SAluOp::Shl, X13, X7, 3);
    b.alu_rr(SAluOp::Add, X13, X6, X13);
    b.store(X14, X13, 0, MemSize::B8);
    b.bind(skip_bd);
    // Vector sweep over i in [ilo, ihi].
    b.alu_ri(SAluOp::Add, X12, X10, 0);
    b.bind(v_loop);
    b.branch(BranchCond::Gt, X12, X11, v_done);
    b.alu_rr(SAluOp::Sub, X13, X11, X12);
    b.alu_ri(SAluOp::Add, X13, X13, 1);
    b.pwhilelt(P1, X13, ElemSize::B64);
    b.alu_ri(SAluOp::Shl, X17, X12, 3);
    // prev1[i-1] / prev1[i] / prev2[i-1].
    b.alu_rr(SAluOp::Add, X13, X5, X17);
    b.alu_ri(SAluOp::Add, X14, X13, -8);
    b.vload(V0, X14, P1, ElemSize::B64); // prev1[i-1] -> from (i-1, j) del
    b.vload(V1, X13, P1, ElemSize::B64); // prev1[i]   -> from (i, j-1) ins
    b.alu_rr(SAluOp::Add, X15, X4, X17);
    b.alu_ri(SAluOp::Add, X15, X15, -8);
    b.vload(V2, X15, P1, ElemSize::B64); // prev2[i-1] -> diagonal
                                         // Characters: P[i-1] and T[j-1] = TR[tlen - d + i].
    b.alu_rr(SAluOp::Add, X16, X0, X12);
    b.alu_ri(SAluOp::Add, X16, X16, -1);
    b.vload_n(V3, X16, P1, ElemSize::B64, MemSize::B1);
    b.alu_rr(SAluOp::Sub, X16, X3, X7);
    b.alu_rr(SAluOp::Add, X16, X16, X12);
    b.alu_rr(SAluOp::Add, X16, X16, X1);
    b.vload_n(V4, X16, P1, ElemSize::B64, MemSize::B1);
    // diag += mismatch where chars differ; gap terms.
    b.vcmp_vv(BranchCond::Ne, P3, V3, V4, P1, ElemSize::B64);
    b.valu_vi(VAluOp::Add, V2, V2, args.costs.mismatch, P3, ElemSize::B64);
    b.valu_vi(VAluOp::Add, V0, V0, args.costs.gap, P1, ElemSize::B64);
    b.valu_vi(VAluOp::Add, V1, V1, args.costs.gap, P1, ElemSize::B64);
    b.valu_vv(VAluOp::Smin, V0, V0, V1, P1, ElemSize::B64);
    b.valu_vv(VAluOp::Smin, V0, V0, V2, P1, ElemSize::B64);
    b.alu_rr(SAluOp::Add, X13, X6, X17);
    b.vstore(V0, X13, P1, ElemSize::B64);
    b.alu_ri(SAluOp::Add, X12, X12, 8);
    b.jump(v_loop);
    b.bind(v_done);
    // Rotate diagonal arrays: (prev2, prev1, cur) <- (prev1, cur, prev2).
    b.alu_ri(SAluOp::Add, X13, X4, 0);
    b.alu_ri(SAluOp::Add, X4, X5, 0);
    b.alu_ri(SAluOp::Add, X5, X6, 0);
    b.alu_ri(SAluOp::Add, X6, X13, 0);
    b.alu_ri(SAluOp::Add, X7, X7, 1);
    b.jump(d_loop);

    b.bind(finish);
    // Final score is cell i = plen of the last computed diagonal (prev1
    // after the rotate).
    b.mov_imm(X13, 8 * args.plen as i64);
    b.alu_rr(SAluOp::Add, X13, X5, X13);
    b.load(X14, X13, 0, MemSize::B8);
    b.store(X14, X9, 0, MemSize::B8);
    b.halt();
    b.build().expect("dp vec kernel builds")
}

/// Builds the QBUFFER-based kernel (`Quetzal` tier, Fig. 7 ③④).
///
/// The three rolling diagonal regions live in QBUFFER 1 (64-bit
/// elements) and are accessed with `qzload`/`qzstore`, replacing the
/// store-load forwarding traffic of the memory version; the character
/// streams stay as cheap unit-stride loads, exactly as Fig. 7 keeps
/// "one of the input sequences and the pre-computed values" in the
/// buffers and the rest in the cache hierarchy.
fn build_qz_program(args: &DpArgs) -> Program {
    let mut b = ProgramBuilder::new();
    b.name("dp-QZ");
    let n_chars = args.plen + args.tlen;
    let _ = n_chars;
    b.mov_imm(X26, 3 * args.region);
    b.mov_imm(X27, 3 * args.region);
    b.mov_imm(X28, 2); // E64
    b.qzconf(X26, X27, X28);
    // Fill the three diagonal regions with INF (stream the host-staged
    // INF pool); charged to the QUETZAL implementation.
    crate::common::emit_qz_stage_words(
        &mut b,
        QBufSel::Q1,
        args.inf_addr,
        3 * args.region as usize,
    );
    // Seed D[0][0] = 0 at prev1 slot 1 (region 1, element 1).
    b.ptrue(P0, ElemSize::B64);
    b.mov_imm(X23, 1);
    b.pwhilelt(P2, X23, ElemSize::B64); // single-lane predicate
    b.dup_imm(V20, args.region + 1, ElemSize::B64);
    b.dup_imm(V21, 0, ElemSize::B64);
    b.qzstore(V21, V20, QBufSel::Q1, P2);

    b.mov_imm(X0, args.pa as i64);
    b.mov_imm(X1, args.tra as i64);
    b.mov_imm(X2, args.plen as i64);
    b.mov_imm(X3, args.tlen as i64);
    // Region bases as element indices of "slot i = 0".
    b.mov_imm(X4, 1); // prev2
    b.mov_imm(X5, args.region + 1); // prev1
    b.mov_imm(X6, 2 * args.region + 1); // cur
    b.mov_imm(X7, 1); // d
    b.mov_imm(X8, (args.plen + args.tlen) as i64);
    b.mov_imm(X9, args.result as i64);
    b.mov_imm(X21, 0);
    b.mov_imm(X22, DP_INF);

    let d_loop = b.label();
    let skip_b0 = b.label();
    let skip_bd = b.label();
    let v_loop = b.label();
    let v_done = b.label();
    let finish = b.label();

    b.bind(d_loop);
    b.branch(BranchCond::Gt, X7, X8, finish);
    emit_band_range(&mut b, args);
    // Borders + boundary cells in at most three single-lane qzstores.
    b.dup_imm(V10, DP_INF, ElemSize::B64);
    b.alu_ri(SAluOp::Add, X13, X10, -1);
    b.alu_rr(SAluOp::Add, X13, X6, X13);
    b.dup(V11, X13, ElemSize::B64);
    b.alu_ri(SAluOp::Add, X14, X11, 1);
    b.alu_rr(SAluOp::Add, X14, X6, X14);
    b.vinsert(V11, X14, 1, ElemSize::B64);
    b.mov_imm(X23, 2);
    b.pwhilelt(P3, X23, ElemSize::B64);
    b.qzstore(V10, V11, QBufSel::Q1, P3);
    b.mov_imm(X23, 1);
    b.pwhilelt(P2, X23, ElemSize::B64);
    b.mov_imm(X14, args.tlen.min(args.band as usize) as i64);
    b.branch(BranchCond::Gt, X7, X14, skip_b0);
    b.mov_imm(X14, args.costs.gap);
    b.alu_rr(SAluOp::Mul, X14, X14, X7);
    b.dup(V10, X14, ElemSize::B64);
    b.dup(V11, X6, ElemSize::B64);
    b.qzstore(V10, V11, QBufSel::Q1, P2);
    b.bind(skip_b0);
    b.mov_imm(X14, args.plen.min(args.band as usize) as i64);
    b.branch(BranchCond::Gt, X7, X14, skip_bd);
    b.mov_imm(X14, args.costs.gap);
    b.alu_rr(SAluOp::Mul, X14, X14, X7);
    b.dup(V10, X14, ElemSize::B64);
    b.alu_rr(SAluOp::Add, X13, X6, X7);
    b.dup(V11, X13, ElemSize::B64);
    b.qzstore(V10, V11, QBufSel::Q1, P2);
    b.bind(skip_bd);
    // Vector sweep: all four index vectors are maintained incrementally
    // (one `index` each at diagonal start, one increment per iteration) —
    // this is what makes the QUETZAL variant instruction-leaner than the
    // address arithmetic of the memory version.
    b.alu_ri(SAluOp::Add, X12, X10, 0);
    b.alu_rr(SAluOp::Add, X13, X5, X12);
    b.alu_ri(SAluOp::Add, X13, X13, -1);
    b.index(V20, X13, 1, ElemSize::B64); // prev1[i-1]
    b.alu_ri(SAluOp::Add, X13, X13, 1);
    b.index(V21, X13, 1, ElemSize::B64); // prev1[i]
    b.alu_rr(SAluOp::Add, X13, X4, X12);
    b.alu_ri(SAluOp::Add, X13, X13, -1);
    b.index(V22, X13, 1, ElemSize::B64); // prev2[i-1]
    b.alu_rr(SAluOp::Add, X13, X6, X12);
    b.index(V23, X13, 1, ElemSize::B64); // cur[i]
                                         // Character pointers, advanced by 8 per iteration.
    b.alu_rr(SAluOp::Add, X16, X0, X12);
    b.alu_ri(SAluOp::Add, X16, X16, -1);
    b.alu_rr(SAluOp::Sub, X17, X3, X7);
    b.alu_rr(SAluOp::Add, X17, X17, X12);
    b.alu_rr(SAluOp::Add, X17, X17, X1);
    b.bind(v_loop);
    b.branch(BranchCond::Gt, X12, X11, v_done);
    b.alu_rr(SAluOp::Sub, X13, X11, X12);
    b.alu_ri(SAluOp::Add, X13, X13, 1);
    b.pwhilelt(P1, X13, ElemSize::B64);
    b.qzload(V0, V20, QBufSel::Q1, P1); // prev1[i-1] (deletion)
    b.qzload(V1, V21, QBufSel::Q1, P1); // prev1[i] (insertion)
    b.qzload(V2, V22, QBufSel::Q1, P1); // prev2[i-1] (diagonal)
    b.vload_n(V3, X16, P1, ElemSize::B64, MemSize::B1); // P[i-1]
    b.vload_n(V4, X17, P1, ElemSize::B64, MemSize::B1); // TR[tlen-d+i]
    b.vcmp_vv(BranchCond::Ne, P3, V3, V4, P1, ElemSize::B64);
    b.valu_vi(VAluOp::Add, V2, V2, args.costs.mismatch, P3, ElemSize::B64);
    b.valu_vi(VAluOp::Add, V0, V0, args.costs.gap, P1, ElemSize::B64);
    b.valu_vi(VAluOp::Add, V1, V1, args.costs.gap, P1, ElemSize::B64);
    b.valu_vv(VAluOp::Smin, V0, V0, V1, P1, ElemSize::B64);
    b.valu_vv(VAluOp::Smin, V0, V0, V2, P1, ElemSize::B64);
    b.qzstore(V0, V23, QBufSel::Q1, P1);
    b.valu_vi(VAluOp::Add, V20, V20, 8, P0, ElemSize::B64);
    b.valu_vi(VAluOp::Add, V21, V21, 8, P0, ElemSize::B64);
    b.valu_vi(VAluOp::Add, V22, V22, 8, P0, ElemSize::B64);
    b.valu_vi(VAluOp::Add, V23, V23, 8, P0, ElemSize::B64);
    b.alu_ri(SAluOp::Add, X16, X16, 8);
    b.alu_ri(SAluOp::Add, X17, X17, 8);
    b.alu_ri(SAluOp::Add, X12, X12, 8);
    b.jump(v_loop);
    b.bind(v_done);
    // Rotate regions.
    b.alu_ri(SAluOp::Add, X13, X4, 0);
    b.alu_ri(SAluOp::Add, X4, X5, 0);
    b.alu_ri(SAluOp::Add, X5, X6, 0);
    b.alu_ri(SAluOp::Add, X6, X13, 0);
    b.alu_ri(SAluOp::Add, X7, X7, 1);
    b.jump(d_loop);

    b.bind(finish);
    b.mov_imm(X23, 1);
    b.pwhilelt(P2, X23, ElemSize::B64);
    b.alu_rr(SAluOp::Add, X13, X5, X2);
    b.dup(V11, X13, ElemSize::B64);
    b.qzload(V0, V11, QBufSel::Q1, P2);
    b.vextract(X14, V0, 0, ElemSize::B64);
    b.store(X14, X9, 0, MemSize::B8);
    b.halt();
    b.build().expect("dp qz kernel builds")
}

/// Builds the all-scalar baseline.
fn build_base_program(args: &DpArgs) -> Program {
    let mut b = ProgramBuilder::new();
    b.name("dp-BASE");
    b.mov_imm(X0, args.pa as i64);
    b.mov_imm(X1, args.tra as i64);
    b.mov_imm(X2, args.plen as i64);
    b.mov_imm(X3, args.tlen as i64);
    b.mov_imm(X4, args.arr[0] as i64);
    b.mov_imm(X5, args.arr[1] as i64);
    b.mov_imm(X6, args.arr[2] as i64);
    b.mov_imm(X7, 1);
    b.mov_imm(X8, (args.plen + args.tlen) as i64);
    b.mov_imm(X9, args.result as i64);
    b.mov_imm(X21, 0);
    b.mov_imm(X22, DP_INF);

    let d_loop = b.label();
    let skip_b0 = b.label();
    let skip_bd = b.label();
    let i_loop = b.label();
    let i_done = b.label();
    let match_case = b.label();
    let after_sub = b.label();
    let finish = b.label();

    b.bind(d_loop);
    b.branch(BranchCond::Gt, X7, X8, finish);
    emit_band_range(&mut b, args);
    b.alu_ri(SAluOp::Shl, X13, X10, 3);
    b.alu_rr(SAluOp::Add, X13, X6, X13);
    b.store(X22, X13, -8, MemSize::B8);
    b.alu_ri(SAluOp::Shl, X13, X11, 3);
    b.alu_rr(SAluOp::Add, X13, X6, X13);
    b.store(X22, X13, 8, MemSize::B8);
    b.mov_imm(X14, args.tlen.min(args.band as usize) as i64);
    b.branch(BranchCond::Gt, X7, X14, skip_b0);
    b.mov_imm(X14, args.costs.gap);
    b.alu_rr(SAluOp::Mul, X14, X14, X7);
    b.store(X14, X6, 0, MemSize::B8);
    b.bind(skip_b0);
    b.mov_imm(X14, args.plen.min(args.band as usize) as i64);
    b.branch(BranchCond::Gt, X7, X14, skip_bd);
    b.mov_imm(X14, args.costs.gap);
    b.alu_rr(SAluOp::Mul, X14, X14, X7);
    b.alu_ri(SAluOp::Shl, X13, X7, 3);
    b.alu_rr(SAluOp::Add, X13, X6, X13);
    b.store(X14, X13, 0, MemSize::B8);
    b.bind(skip_bd);
    b.alu_ri(SAluOp::Add, X12, X10, 0);
    b.bind(i_loop);
    b.branch(BranchCond::Gt, X12, X11, i_done);
    b.alu_ri(SAluOp::Shl, X17, X12, 3);
    b.alu_rr(SAluOp::Add, X13, X5, X17);
    b.load(X14, X13, -8, MemSize::B8); // prev1[i-1]
    b.load(X15, X13, 0, MemSize::B8); // prev1[i]
    b.alu_rr(SAluOp::Add, X13, X4, X17);
    b.load(X16, X13, -8, MemSize::B8); // prev2[i-1]
    b.alu_rr(SAluOp::Add, X13, X0, X12);
    b.load(X18, X13, -1, MemSize::B1); // P[i-1]
    b.alu_rr(SAluOp::Sub, X13, X3, X7);
    b.alu_rr(SAluOp::Add, X13, X13, X12);
    b.alu_rr(SAluOp::Add, X13, X13, X1);
    b.load(X19, X13, 0, MemSize::B1); // TR[tlen - d + i]
    b.branch(BranchCond::Eq, X18, X19, match_case);
    b.alu_ri(SAluOp::Add, X16, X16, args.costs.mismatch);
    b.bind(match_case);
    b.jump(after_sub);
    b.bind(after_sub);
    b.alu_ri(SAluOp::Add, X14, X14, args.costs.gap);
    b.alu_ri(SAluOp::Add, X15, X15, args.costs.gap);
    b.alu_rr(SAluOp::Min, X14, X14, X15);
    b.alu_rr(SAluOp::Min, X14, X14, X16);
    b.alu_rr(SAluOp::Add, X13, X6, X17);
    b.store(X14, X13, 0, MemSize::B8);
    emit_compiled_overhead(&mut b, 4);
    b.alu_ri(SAluOp::Add, X12, X12, 1);
    b.jump(i_loop);
    b.bind(i_done);
    b.alu_ri(SAluOp::Add, X13, X4, 0);
    b.alu_ri(SAluOp::Add, X4, X5, 0);
    b.alu_ri(SAluOp::Add, X5, X6, 0);
    b.alu_ri(SAluOp::Add, X6, X13, 0);
    b.alu_ri(SAluOp::Add, X7, X7, 1);
    b.jump(d_loop);

    b.bind(finish);
    b.mov_imm(X13, 8 * args.plen as i64);
    b.alu_rr(SAluOp::Add, X13, X5, X13);
    b.load(X14, X13, 0, MemSize::B8);
    b.store(X14, X9, 0, MemSize::B8);
    b.halt();
    b.build().expect("dp base kernel builds")
}

/// Runs a linear-gap anti-diagonal DP (full NW when `band >= plen+tlen`,
/// banded SW otherwise) on the simulated machine. Returns the alignment
/// score in [`SimOutcome::value`] (`>= DP_INF/2` means the band was
/// exceeded).
///
/// The QUETZAL tiers require `plen + tlen` widened characters and three
/// `plen + 3`-element regions to fit the QBUFFERs (1024 64-bit elements
/// each). Longer inputs should be windowed by the caller, as the paper
/// itself prescribes for long sequences (§VI).
///
/// # Errors
///
/// Returns [`SimError`] on simulation failure.
///
/// # Panics
///
/// Panics if a QUETZAL tier is requested for inputs that exceed the
/// QBUFFER capacity.
pub fn dp_sim<P: Probe>(
    machine: &mut Machine<P>,
    pattern: &[u8],
    text: &[u8],
    costs: LinearCosts,
    band: Option<i64>,
    tier: Tier,
) -> Result<SimOutcome, SimError> {
    let plen = pattern.len();
    let tlen = text.len();
    let band = band.unwrap_or((plen + tlen) as i64 + 1);
    let pa = stage_bytes(machine, pattern);
    let text_rev: Vec<u8> = text.iter().rev().copied().collect();
    let tra = stage_bytes(machine, &text_rev);
    let result = machine.alloc(8);

    let entries = plen + 3;
    let mut arr = [0u64; 3];
    for slot in &mut arr {
        let base = machine.alloc(8 * entries as u64);
        for i in 0..entries {
            machine.write_u64(base + 8 * i as u64, DP_INF as u64);
        }
        *slot = base + 8; // "i = 0" slot
    }
    // Seed diagonal 0: D[0][0] = 0 lives in the prev1 array.
    machine.write_u64(arr[1], 0);

    let region = entries as i64;
    let mut inf_addr = 0;
    if tier.uses_quetzal() {
        let cap = machine
            .core()
            .state()
            .qz
            .buf(1)
            .capacity_elems(quetzal::isa::EncSize::E64);
        assert!(
            (3 * region) as u64 <= cap,
            "diagonals exceed QBUFFER capacity; window the DP (see docs)"
        );
        let inf_pool = vec![DP_INF; 3 * region as usize];
        inf_addr = stage_words(machine, &inf_pool);
        let args = DpArgs {
            pa,
            tra,
            plen,
            tlen,
            costs,
            band,
            result,
            arr,
            region,
            inf_addr,
        };
        let program = build_qz_program(&args);
        let stats = machine.run(&program)?;
        let score = machine.read_u64(result) as i64;
        return Ok(SimOutcome {
            value: score,
            stats,
        });
    }

    let args = DpArgs {
        pa,
        tra,
        plen,
        tlen,
        costs,
        band,
        result,
        arr,
        region,
        inf_addr,
    };
    let program = match tier {
        Tier::Base => build_base_program(&args),
        _ => build_vec_program(&args),
    };
    let stats = machine.run(&program)?;
    let score = machine.read_u64(result) as i64;
    Ok(SimOutcome {
        value: score,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use quetzal::MachineConfig;
    use quetzal_genomics::dataset::DatasetSpec;
    use quetzal_genomics::distance::levenshtein;

    #[test]
    fn scalar_banded_matches_levenshtein_with_wide_band() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"ACAG", b"AAGT"),
            (b"kitten", b"sitting"),
            (b"", b"AC"),
            (b"GATTACA", b"GATTACA"),
        ];
        for &(a, t) in cases {
            let got = banded_linear_score(a, t, LinearCosts::UNIT, 1000).unwrap();
            assert_eq!(got, levenshtein(a, t) as i64, "{a:?}");
        }
    }

    #[test]
    fn scalar_banded_rejects_outside_band() {
        // Length difference 6 with band 3: no path.
        assert_eq!(
            banded_linear_score(b"A", b"AAAAAAA", LinearCosts::UNIT, 3),
            None
        );
    }

    #[test]
    fn sim_tiers_match_scalar_full_nw() {
        for pair in DatasetSpec::d100().generate_n(31, 2) {
            let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
            let want = levenshtein(p, t) as i64;
            for tier in Tier::all() {
                let mut m = Machine::new(MachineConfig::default());
                let out = dp_sim(&mut m, p, t, LinearCosts::UNIT, None, tier).unwrap();
                assert_eq!(out.value, want, "{tier}");
            }
        }
    }

    #[test]
    fn sim_banded_matches_scalar_banded() {
        let pair = &DatasetSpec::d100().generate_n(33, 1)[0];
        let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
        let w = 16i64;
        let want = banded_linear_score(p, t, LinearCosts::UNIT, w).unwrap();
        for tier in Tier::all() {
            let mut m = Machine::new(MachineConfig::default());
            let out = dp_sim(&mut m, p, t, LinearCosts::UNIT, Some(w), tier).unwrap();
            assert_eq!(out.value, want, "{tier}");
        }
    }

    #[test]
    fn sim_respects_custom_costs() {
        let costs = LinearCosts {
            mismatch: 3,
            gap: 2,
        };
        let p = b"ACGTAC";
        let t = b"AGGTACG";
        let want = banded_linear_score(p, t, costs, 100).unwrap();
        for tier in [Tier::Vec, Tier::Quetzal] {
            let mut m = Machine::new(MachineConfig::default());
            let out = dp_sim(&mut m, p, t, costs, None, tier).unwrap();
            assert_eq!(out.value, want, "{tier}");
        }
    }

    #[test]
    fn quetzal_gain_is_modest_for_classical_dp() {
        // Paper §VII-A.3: long dependence chains overshadow the latency
        // benefit -> expect a small (but real) improvement.
        let pair = &DatasetSpec::d100().generate_n(35, 1)[0];
        let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
        let mut mv = Machine::new(MachineConfig::default());
        let vec = dp_sim(&mut mv, p, t, LinearCosts::UNIT, None, Tier::Vec).unwrap();
        let mut mq = Machine::new(MachineConfig::default());
        let qz = dp_sim(&mut mq, p, t, LinearCosts::UNIT, None, Tier::Quetzal).unwrap();
        let speedup = vec.stats.cycles as f64 / qz.stats.cycles as f64;
        assert!(
            speedup > 1.0 && speedup < 3.0,
            "classical DP speedup should be small but positive, got {speedup}"
        );
    }
}
