//! Bidirectional WFA (BiWFA) — optimal alignment in `O(s)` memory.
//!
//! BiWFA (Marco-Sola et al. 2023, the paper's second modern read
//! aligner) runs WFA simultaneously from both ends of the pair. When
//! the two wavefront sets meet, the optimal score is the sum of the two
//! search scores, and the meeting point splits the problem into two
//! halves that are solved recursively — keeping only `O(s)` wavefront
//! memory alive at any time instead of WFA's `O(s²)`.
//!
//! The simulated driver mirrors this structure: a *bounded ping-pong*
//! kernel (see [`crate::wfa_sim::wfa_sim_bounded`]) is charged for the
//! forward and reverse half searches of every recursion level, and the
//! base-case segments run the full WFA kernel.

use crate::common::{SimOutcome, Tier};
use crate::wfa::{wfa_edit_align, WfaResult};
use crate::wfa_sim::{wfa_sim, wfa_sim_bounded, WfaSimError};
use quetzal::uarch::RunStats;
use quetzal::{Machine, Probe};
use quetzal_genomics::cigar::Cigar;
use quetzal_genomics::distance::common_prefix_len;
use quetzal_genomics::Alphabet;

const NONE: i64 = i64::MIN / 4;

/// One direction's wavefront for the bidirectional search.
#[derive(Debug, Clone)]
struct Front {
    lo: i64,
    hi: i64,
    offsets: Vec<i64>,
}

impl Front {
    fn start() -> Front {
        Front {
            lo: 0,
            hi: 0,
            offsets: vec![0],
        }
    }

    fn get(&self, k: i64) -> i64 {
        if k < self.lo || k > self.hi {
            NONE
        } else {
            self.offsets[(k - self.lo) as usize]
        }
    }
}

/// Advances one front by one score step (extend happened already).
fn step(front: &Front, extend: impl Fn(i64, i64) -> i64, plen: i64, tlen: i64) -> Front {
    let lo = front.lo - 1;
    let hi = front.hi + 1;
    let mut offsets = Vec::with_capacity((hi - lo + 1) as usize);
    for k in lo..=hi {
        let best = (front.get(k - 1) + 1)
            .max(front.get(k) + 1)
            .max(front.get(k + 1));
        let v = best - k;
        let best = if best < 0 || v < 0 || v > plen || best > tlen {
            NONE
        } else {
            extend(k, best)
        };
        offsets.push(best);
    }
    Front { lo, hi, offsets }
}

fn extend_all(front: &mut Front, extend: impl Fn(i64, i64) -> i64) {
    for (i, off) in front.offsets.iter_mut().enumerate() {
        let k = front.lo + i as i64;
        if *off >= 0 {
            *off = extend(k, *off);
        }
    }
}

/// Finds the optimal score and a split point `(v, h)` lying on an
/// optimal path, by bidirectional search. Returns `(score, v, h,
/// forward_score)`.
fn find_breakpoint(pattern: &[u8], text: &[u8]) -> (u32, usize, usize, u32) {
    let plen = pattern.len() as i64;
    let tlen = text.len() as i64;
    let k_final = tlen - plen;

    let fwd_extend = |k: i64, h: i64| -> i64 {
        let v = h - k;
        if v < 0 || v > plen || h > tlen || h < 0 {
            return h;
        }
        h + common_prefix_len(&pattern[v as usize..], &text[h as usize..]) as i64
    };
    // Reverse search: WFA over the reversed sequences. Reverse offset
    // `hr` counts text consumed from the right end.
    let prev: Vec<u8> = pattern.iter().rev().copied().collect();
    let trev: Vec<u8> = text.iter().rev().copied().collect();
    let rev_extend = |k: i64, h: i64| -> i64 {
        let v = h - k;
        if v < 0 || v > plen || h > tlen || h < 0 {
            return h;
        }
        h + common_prefix_len(&prev[v as usize..], &trev[h as usize..]) as i64
    };

    let mut f = Front::start();
    extend_all(&mut f, fwd_extend);
    let mut r = Front::start();
    extend_all(&mut r, rev_extend);
    let (mut sf, mut sr) = (0u32, 0u32);

    // Overlap test: forward diagonal k pairs with reverse diagonal
    // k_final - k; they meet when the consumed text spans cover it all.
    let meet = |f: &Front, r: &Front| -> Option<(usize, usize)> {
        for k in f.lo..=f.hi {
            let h = f.get(k);
            if h < 0 {
                continue;
            }
            let kr = k_final - k;
            let hr = r.get(kr);
            if hr < 0 {
                continue;
            }
            if h + hr >= tlen {
                let v = (h - k).clamp(0, plen);
                return Some((v as usize, h.min(tlen) as usize));
            }
        }
        None
    };

    loop {
        if let Some((v, h)) = meet(&f, &r) {
            return (sf + sr, v, h, sf);
        }
        // Advance the side with the smaller score (balanced search).
        if sf <= sr {
            f = step(&f, fwd_extend, plen, tlen);
            extend_all(&mut f, fwd_extend);
            sf += 1;
        } else {
            r = step(&r, rev_extend, plen, tlen);
            extend_all(&mut r, rev_extend);
            sr += 1;
        }
    }
}

/// Segment length below which the recursion falls back to plain WFA.
const BASE_CASE: usize = 96;

/// Bidirectional WFA alignment: same optimal result as
/// [`wfa_edit_align`], `O(s)` live memory.
///
/// ```
/// use quetzal_algos::biwfa::biwfa_edit_align;
///
/// let r = biwfa_edit_align(b"ACAG", b"AAGT");
/// assert_eq!(r.score, 2);
/// assert!(r.cigar.validate(b"ACAG", b"AAGT").is_ok());
/// ```
pub fn biwfa_edit_align(pattern: &[u8], text: &[u8]) -> WfaResult {
    if pattern.len().min(text.len()) <= BASE_CASE {
        return wfa_edit_align(pattern, text);
    }
    let (score, v, h, _sf) = find_breakpoint(pattern, text);
    if v == 0 && h == 0 || v == pattern.len() && h == text.len() {
        // Degenerate split; fall back.
        return wfa_edit_align(pattern, text);
    }
    let left = biwfa_edit_align(&pattern[..v], &text[..h]);
    let right = biwfa_edit_align(&pattern[v..], &text[h..]);
    let mut cigar = Cigar::new();
    cigar.extend_from(&left.cigar);
    cigar.extend_from(&right.cigar);
    debug_assert_eq!(left.score + right.score, score, "split must be optimal");
    WfaResult {
        score: left.score + right.score,
        cigar,
    }
}

/// Simulated BiWFA: charges a bounded forward and reverse half-search
/// per recursion level (ping-pong wavefronts, `O(s)` memory) plus full
/// WFA kernels on the base-case segments. Returns the optimal score.
///
/// # Errors
///
/// Returns [`WfaSimError`] if any kernel fails.
pub fn biwfa_sim<P: Probe>(
    machine: &mut Machine<P>,
    pattern: &[u8],
    text: &[u8],
    alphabet: Alphabet,
    tier: Tier,
) -> Result<SimOutcome, WfaSimError> {
    let mut stats = RunStats::default();
    let score = biwfa_sim_rec(machine, pattern, text, alphabet, tier, &mut stats)?;
    Ok(SimOutcome {
        value: score as i64,
        stats,
    })
}

fn biwfa_sim_rec<P: Probe>(
    machine: &mut Machine<P>,
    pattern: &[u8],
    text: &[u8],
    alphabet: Alphabet,
    tier: Tier,
    stats: &mut RunStats,
) -> Result<u32, WfaSimError> {
    if pattern.len().min(text.len()) <= BASE_CASE {
        let out = wfa_sim(machine, pattern, text, alphabet, tier)?;
        stats.accumulate(&out.stats);
        return Ok(out.value as u32);
    }
    let (score, v, h, sf) = find_breakpoint(pattern, text);
    if (v == 0 && h == 0) || (v == pattern.len() && h == text.len()) {
        let out = wfa_sim(machine, pattern, text, alphabet, tier)?;
        stats.accumulate(&out.stats);
        return Ok(out.value as u32);
    }
    // Charge the bidirectional search: a forward search to sf and a
    // reverse search to score - sf, each with ping-pong wavefronts.
    let fwd = wfa_sim_bounded(machine, pattern, text, alphabet, tier, sf as i64)?;
    stats.accumulate(&fwd.stats);
    let prev: Vec<u8> = pattern.iter().rev().copied().collect();
    let trev: Vec<u8> = text.iter().rev().copied().collect();
    let rev = wfa_sim_bounded(machine, &prev, &trev, alphabet, tier, (score - sf) as i64)?;
    stats.accumulate(&rev.stats);
    // Recurse on the halves.
    let left = biwfa_sim_rec(machine, &pattern[..v], &text[..h], alphabet, tier, stats)?;
    let right = biwfa_sim_rec(machine, &pattern[v..], &text[h..], alphabet, tier, stats)?;
    Ok(left + right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quetzal::MachineConfig;
    use quetzal_genomics::dataset::{DatasetSpec, SplitMix64};
    use quetzal_genomics::distance::levenshtein;

    #[test]
    fn matches_wfa_on_small_inputs() {
        let r = biwfa_edit_align(b"ACAG", b"AAGT");
        assert_eq!(r.score, 2);
        r.cigar.validate(b"ACAG", b"AAGT").unwrap();
    }

    #[test]
    fn matches_levenshtein_on_long_inputs() {
        for pair in DatasetSpec::d250().generate_n(61, 4) {
            let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
            let r = biwfa_edit_align(p, t);
            assert_eq!(r.score, levenshtein(p, t), "score optimal");
            r.cigar.validate(p, t).unwrap();
            assert_eq!(r.cigar.edit_distance(), r.score, "transcript optimal");
        }
    }

    #[test]
    fn randomised_against_oracle() {
        let mut rng = SplitMix64::new(404);
        for _ in 0..20 {
            let len = 150 + (rng.next_u64() % 300) as usize;
            let a: Vec<u8> = (0..len).map(|_| b"ACGT"[rng.below(4) as usize]).collect();
            let mut b = a.clone();
            for _ in 0..rng.below(20) {
                if b.len() < 2 {
                    break;
                }
                let pos = rng.below(b.len() as u64) as usize;
                match rng.below(3) {
                    0 => b[pos] = b"ACGT"[rng.below(4) as usize],
                    1 => b.insert(pos, b"ACGT"[rng.below(4) as usize]),
                    _ => {
                        b.remove(pos);
                    }
                }
            }
            let r = biwfa_edit_align(&a, &b);
            assert_eq!(r.score, levenshtein(&a, &b));
            r.cigar.validate(&a, &b).unwrap();
        }
    }

    #[test]
    fn sim_matches_reference_across_tiers() {
        let pair = &DatasetSpec::d250().generate_n(63, 1)[0];
        let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
        let want = levenshtein(p, t) as i64;
        for tier in Tier::all() {
            let mut m = Machine::new(MachineConfig::default());
            let out = biwfa_sim(&mut m, p, t, Alphabet::Dna, tier).unwrap();
            assert_eq!(out.value, want, "{tier}");
        }
    }

    #[test]
    fn quetzal_c_accelerates_biwfa() {
        let pair = &DatasetSpec::d250().generate_n(65, 1)[0];
        let (p, t) = (pair.pattern.as_bytes(), pair.text.as_bytes());
        let mut mv = Machine::new(MachineConfig::default());
        let vec = biwfa_sim(&mut mv, p, t, Alphabet::Dna, Tier::Vec).unwrap();
        let mut mq = Machine::new(MachineConfig::default());
        let qzc = biwfa_sim(&mut mq, p, t, Alphabet::Dna, Tier::QuetzalC).unwrap();
        assert!(
            qzc.stats.cycles < vec.stats.cycles,
            "QUETZAL+C {} must beat VEC {}",
            qzc.stats.cycles,
            vec.stats.cycles
        );
    }
}
