//! Sparse matrix-vector multiplication (CSR) — the second non-genomics
//! kernel of paper §VII-F.
//!
//! SpMV's inner loop gathers `x[col[k]]` — the same memory-indexed
//! pattern as the genomics kernels. QUETZAL stages the dense vector in
//! a QBUFFER and fuses the gather and multiply into one
//! `qzmm<mul>` instruction.

use crate::common::{emit_compiled_overhead, stage_words, SimOutcome, Tier};
use quetzal::isa::*;
use quetzal::uarch::SimError;
use quetzal::{Machine, Probe};
use quetzal_genomics::dataset::SplitMix64;

/// A CSR sparse matrix with `i64` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrMatrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row start offsets (`rows + 1` entries).
    pub row_ptr: Vec<i64>,
    /// Column index per non-zero.
    pub col_idx: Vec<i64>,
    /// Value per non-zero.
    pub values: Vec<i64>,
}

impl CsrMatrix {
    /// Generates a random sparse matrix with ~`nnz_per_row` non-zeros
    /// per row, deterministically from `seed`.
    pub fn random(rows: usize, cols: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
        let mut rng = SplitMix64::new(seed);
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for _ in 0..rows {
            let nnz = 1 + rng.below(2 * nnz_per_row as u64) as usize;
            for _ in 0..nnz {
                col_idx.push(rng.below(cols as u64) as i64);
                values.push(rng.below(1 << 16) as i64 - (1 << 15));
            }
            row_ptr.push(col_idx.len() as i64);
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Total non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }
}

/// Scalar reference SpMV: `y = A · x`.
pub fn spmv_ref(a: &CsrMatrix, x: &[i64]) -> Vec<i64> {
    let mut y = vec![0i64; a.rows];
    for (r, out) in y.iter_mut().enumerate() {
        let (s, e) = (a.row_ptr[r] as usize, a.row_ptr[r + 1] as usize);
        *out = (s..e)
            .map(|k| a.values[k].wrapping_mul(x[a.col_idx[k] as usize]))
            .fold(0i64, |acc, v| acc.wrapping_add(v));
    }
    y
}

struct SpmvAddrs {
    row_ptr: u64,
    col_idx: u64,
    values: u64,
    x: u64,
    y: u64,
    rows: usize,
}

fn emit_common_prologue(b: &mut ProgramBuilder, a: &SpmvAddrs) {
    b.mov_imm(X0, a.row_ptr as i64);
    b.mov_imm(X1, a.col_idx as i64);
    b.mov_imm(X2, a.values as i64);
    b.mov_imm(X3, a.x as i64);
    b.mov_imm(X5, a.y as i64);
    b.mov_imm(X6, a.rows as i64);
    b.mov_imm(X7, 0); // row
    b.mov_imm(X21, 0);
}

fn build_base(a: &SpmvAddrs) -> Program {
    let mut b = ProgramBuilder::new();
    b.name("spmv-BASE");
    emit_common_prologue(&mut b, a);
    let row_loop = b.label();
    let k_loop = b.label();
    let k_done = b.label();
    let done = b.label();
    b.bind(row_loop);
    b.branch(BranchCond::Ge, X7, X6, done);
    b.alu_ri(SAluOp::Shl, X13, X7, 3);
    b.alu_rr(SAluOp::Add, X13, X0, X13);
    b.load(X8, X13, 0, MemSize::B8); // k = row_ptr[r]
    b.load(X9, X13, 8, MemSize::B8); // end = row_ptr[r+1]
    b.mov_imm(X10, 0); // acc
    b.bind(k_loop);
    b.branch(BranchCond::Ge, X8, X9, k_done);
    b.alu_ri(SAluOp::Shl, X13, X8, 3);
    b.alu_rr(SAluOp::Add, X14, X1, X13);
    b.load(X15, X14, 0, MemSize::B8); // col
    b.alu_rr(SAluOp::Add, X14, X2, X13);
    b.load(X16, X14, 0, MemSize::B8); // value
    b.alu_ri(SAluOp::Shl, X15, X15, 3);
    b.alu_rr(SAluOp::Add, X15, X3, X15);
    b.load(X17, X15, 0, MemSize::B8); // x[col]
    b.alu_rr(SAluOp::Mul, X16, X16, X17);
    b.alu_rr(SAluOp::Add, X10, X10, X16);
    emit_compiled_overhead(&mut b, 4);
    b.alu_ri(SAluOp::Add, X8, X8, 1);
    b.jump(k_loop);
    b.bind(k_done);
    b.alu_ri(SAluOp::Shl, X13, X7, 3);
    b.alu_rr(SAluOp::Add, X13, X5, X13);
    b.store(X10, X13, 0, MemSize::B8);
    b.alu_ri(SAluOp::Add, X7, X7, 1);
    b.jump(row_loop);
    b.bind(done);
    b.halt();
    b.build().expect("spmv base builds")
}

fn build_vector(a: &SpmvAddrs, tier: Tier, cols: usize) -> Program {
    let mut b = ProgramBuilder::new();
    b.name(format!("spmv-{tier}"));
    if tier.uses_quetzal() {
        // Stage the dense vector into QBUFFER 0 (64-bit elements).
        b.mov_imm(X26, cols as i64);
        b.mov_imm(X27, cols as i64);
        b.mov_imm(X28, 2);
        b.qzconf(X26, X27, X28);
        crate::common::emit_qz_stage_words(&mut b, QBufSel::Q0, a.x, cols);
    }
    emit_common_prologue(&mut b, a);
    b.ptrue(P0, ElemSize::B64);
    let row_loop = b.label();
    let k_loop = b.label();
    let k_done = b.label();
    let done = b.label();
    b.bind(row_loop);
    b.branch(BranchCond::Ge, X7, X6, done);
    b.alu_ri(SAluOp::Shl, X13, X7, 3);
    b.alu_rr(SAluOp::Add, X13, X0, X13);
    b.load(X8, X13, 0, MemSize::B8);
    b.load(X9, X13, 8, MemSize::B8);
    b.dup_imm(V5, 0, ElemSize::B64); // vector accumulator
    b.bind(k_loop);
    b.branch(BranchCond::Ge, X8, X9, k_done);
    b.alu_rr(SAluOp::Sub, X13, X9, X8);
    b.pwhilelt(P1, X13, ElemSize::B64);
    b.alu_ri(SAluOp::Shl, X13, X8, 3);
    b.alu_rr(SAluOp::Add, X14, X1, X13);
    b.vload(V0, X14, P1, ElemSize::B64); // cols
    b.alu_rr(SAluOp::Add, X14, X2, X13);
    b.vload(V1, X14, P1, ElemSize::B64); // values
    if tier.uses_quetzal() {
        // Fused gather+multiply from the QBUFFER (paper §VII-F).
        b.qzmm(QzOp::Mul, V2, V1, V0, QBufSel::Q0, P1);
    } else {
        b.vgather(V2, X3, V0, P1, ElemSize::B64, MemSize::B8, 8);
        b.valu_vv(VAluOp::Mul, V2, V2, V1, P1, ElemSize::B64);
    }
    b.valu_vv(VAluOp::Add, V5, V5, V2, P1, ElemSize::B64);
    b.alu_ri(SAluOp::Add, X8, X8, 8);
    b.jump(k_loop);
    b.bind(k_done);
    b.vreduce(RedOp::Add, X10, V5, P0, ElemSize::B64);
    b.alu_ri(SAluOp::Shl, X13, X7, 3);
    b.alu_rr(SAluOp::Add, X13, X5, X13);
    b.store(X10, X13, 0, MemSize::B8);
    b.alu_ri(SAluOp::Add, X7, X7, 1);
    b.jump(row_loop);
    b.bind(done);
    b.halt();
    b.build().expect("spmv vector builds")
}

/// Runs SpMV on the simulated machine; the result vector `y` lands at
/// the returned address. [`SimOutcome::value`] is the number of
/// non-zeros processed.
///
/// # Errors
///
/// Returns [`SimError`] on simulation failure.
///
/// # Panics
///
/// Panics (QUETZAL tiers) if the dense vector exceeds the QBUFFER's
/// 64-bit element capacity; tile the matrix by column blocks instead.
pub fn spmv_sim<P: Probe>(
    machine: &mut Machine<P>,
    a: &CsrMatrix,
    x: &[i64],
    tier: Tier,
) -> Result<(SimOutcome, u64), SimError> {
    assert_eq!(x.len(), a.cols, "vector length must match matrix columns");
    if tier.uses_quetzal() {
        let cap = machine
            .core()
            .state()
            .qz
            .buf(0)
            .capacity_elems(quetzal::isa::EncSize::E64);
        assert!(
            a.cols as u64 <= cap,
            "dense vector exceeds QBUFFER capacity"
        );
    }
    let addrs = SpmvAddrs {
        row_ptr: stage_words(machine, &a.row_ptr),
        col_idx: stage_words(machine, &a.col_idx),
        values: stage_words(machine, &a.values),
        x: stage_words(machine, x),
        y: machine.alloc(8 * a.rows as u64),
        rows: a.rows,
    };
    let program = match tier {
        Tier::Base => build_base(&addrs),
        _ => build_vector(&addrs, tier, a.cols),
    };
    let stats = machine.run(&program)?;
    Ok((
        SimOutcome {
            value: a.nnz() as i64,
            stats,
        },
        addrs.y,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use quetzal::MachineConfig;

    fn dense_x(cols: usize, seed: u64) -> Vec<i64> {
        let mut rng = SplitMix64::new(seed);
        (0..cols)
            .map(|_| rng.below(1 << 12) as i64 - (1 << 11))
            .collect()
    }

    #[test]
    fn all_tiers_match_reference() {
        let a = CsrMatrix::random(40, 256, 6, 17);
        let x = dense_x(256, 18);
        let want = spmv_ref(&a, &x);
        for tier in Tier::all() {
            let mut m = Machine::new(MachineConfig::default());
            let (_, y) = spmv_sim(&mut m, &a, &x, tier).unwrap();
            let got: Vec<i64> = (0..a.rows)
                .map(|r| m.read_u64(y + 8 * r as u64) as i64)
                .collect();
            assert_eq!(got, want, "{tier}");
        }
    }

    #[test]
    fn empty_rows_produce_zero() {
        let a = CsrMatrix {
            rows: 3,
            cols: 8,
            row_ptr: vec![0, 0, 2, 2],
            col_idx: vec![1, 3],
            values: vec![5, 7],
        };
        let x: Vec<i64> = (0..8).collect();
        let want = spmv_ref(&a, &x);
        assert_eq!(want, vec![0, 5 + 21, 0]);
        let mut m = Machine::new(MachineConfig::default());
        let (_, y) = spmv_sim(&mut m, &a, &x, Tier::Vec).unwrap();
        let got: Vec<i64> = (0..3).map(|r| m.read_u64(y + 8 * r) as i64).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn quetzal_beats_vec() {
        // The one-time staging of `x` into the QBUFFER amortises over
        // the non-zeros, and per-row overheads over the row length, so
        // use a denser matrix (typical SpMV suites have tens of
        // non-zeros per row).
        let a = CsrMatrix::random(60, 512, 160, 23);
        let x = dense_x(512, 24);
        let mut mv = Machine::new(MachineConfig::default());
        let (vec_out, _) = spmv_sim(&mut mv, &a, &x, Tier::Vec).unwrap();
        let mut mq = Machine::new(MachineConfig::default());
        let (qz_out, _) = spmv_sim(&mut mq, &a, &x, Tier::Quetzal).unwrap();
        let speedup = vec_out.stats.cycles as f64 / qz_out.stats.cycles as f64;
        assert!(
            speedup > 1.4,
            "QUETZAL SpMV should be clearly faster (paper: 1.94x), got {speedup}"
        );
    }

    #[test]
    fn matrix_generator_is_deterministic() {
        assert_eq!(
            CsrMatrix::random(10, 64, 4, 5),
            CsrMatrix::random(10, 64, 4, 5)
        );
    }
}
