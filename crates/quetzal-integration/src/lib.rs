//! Cross-crate integration tests for the QUETZAL workspace.
//!
//! The tests live in the repository-level `tests/` directory and are
//! wired into this package via `[[test]]` path entries; this library
//! crate intentionally exports nothing.
