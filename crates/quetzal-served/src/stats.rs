//! Daemon-wide counters behind the `/stats` frame.
//!
//! Everything is a relaxed atomic: the counters are monotonic tallies
//! read for observability, not synchronisation. Simulated-throughput
//! (sim-MIPS) is derived from the cumulative retired instructions and
//! the wall-clock time spent executing jobs, the same quantity the
//! `BENCH_uarch.json` trajectory floors.

use quetzal::PoolStats;
use quetzal_trace::json::Value;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic daemon counters (see [`ServerStats::snapshot`] for the
/// wire shape).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Jobs that passed admission.
    pub jobs_accepted: AtomicU64,
    /// Jobs refused with a `busy` frame (tenant quota).
    pub jobs_busy: AtomicU64,
    /// Jobs refused with a `draining` frame (shutdown in progress).
    pub jobs_draining: AtomicU64,
    /// Jobs refused at admission (malformed spec, tenant limit).
    pub jobs_invalid: AtomicU64,
    /// Jobs that ran to their `done` frame.
    pub jobs_completed: AtomicU64,
    /// Healthy items streamed.
    pub items_ok: AtomicU64,
    /// Items that failed both runtime attempts.
    pub items_failed: AtomicU64,
    /// Items rejected statically at admission.
    pub items_rejected: AtomicU64,
    /// Items recovered by the fresh-machine retry.
    pub items_recovered: AtomicU64,
    /// Malformed frames / requests answered with typed errors.
    pub protocol_errors: AtomicU64,
    /// Connections closed for idling past the read deadline
    /// (slow-loris guard).
    pub idle_timeouts: AtomicU64,
    /// Cumulative simulated cycles over healthy items.
    pub cycles: AtomicU64,
    /// Cumulative retired instructions over healthy items.
    pub instructions: AtomicU64,
    /// Cumulative wall-clock microseconds spent executing jobs.
    pub busy_micros: AtomicU64,
}

/// One tenant's occupancy line in the stats frame.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantStats {
    /// Tenant name.
    pub name: String,
    /// Pool occupancy (built / free / quarantined).
    pub pool: PoolStats,
    /// Jobs currently in flight for the tenant.
    pub inflight: u64,
    /// The tenant's in-flight quota.
    pub max_inflight: u64,
}

fn get(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed)
}

impl ServerStats {
    /// Adds one completed job's aggregate to the item/throughput
    /// counters.
    pub fn absorb_job(&self, summary: &crate::job::JobSummary, busy: std::time::Duration) {
        self.jobs_completed.fetch_add(1, Ordering::Relaxed);
        self.items_ok.fetch_add(summary.ok, Ordering::Relaxed);
        self.items_failed
            .fetch_add(summary.failed, Ordering::Relaxed);
        self.items_rejected
            .fetch_add(summary.rejected, Ordering::Relaxed);
        self.items_recovered
            .fetch_add(summary.recovered, Ordering::Relaxed);
        self.cycles.fetch_add(summary.cycles, Ordering::Relaxed);
        self.instructions
            .fetch_add(summary.instructions, Ordering::Relaxed);
        self.busy_micros
            .fetch_add(busy.as_micros() as u64, Ordering::Relaxed);
    }

    /// Renders the counters plus per-tenant occupancy as the `/stats`
    /// wire object.
    pub fn snapshot(&self, tenants: &[TenantStats]) -> Value {
        let busy_micros = get(&self.busy_micros);
        let instructions = get(&self.instructions);
        // Simulated MIPS: retired guest instructions per wall-clock
        // second of job execution (0 until the first job lands).
        let sim_mips = if busy_micros == 0 {
            0.0
        } else {
            instructions as f64 / busy_micros as f64
        };
        let jobs: Value = [
            (
                "accepted".to_string(),
                Value::from(get(&self.jobs_accepted)),
            ),
            ("busy".to_string(), Value::from(get(&self.jobs_busy))),
            (
                "draining".to_string(),
                Value::from(get(&self.jobs_draining)),
            ),
            ("invalid".to_string(), Value::from(get(&self.jobs_invalid))),
            (
                "completed".to_string(),
                Value::from(get(&self.jobs_completed)),
            ),
        ]
        .into_iter()
        .collect();
        let items: Value = [
            ("ok".to_string(), Value::from(get(&self.items_ok))),
            ("failed".to_string(), Value::from(get(&self.items_failed))),
            (
                "rejected".to_string(),
                Value::from(get(&self.items_rejected)),
            ),
            (
                "recovered".to_string(),
                Value::from(get(&self.items_recovered)),
            ),
        ]
        .into_iter()
        .collect();
        let totals: Value = [
            ("cycles".to_string(), Value::from(get(&self.cycles))),
            ("instructions".to_string(), Value::from(instructions)),
            ("busy_micros".to_string(), Value::from(busy_micros)),
            ("sim_mips".to_string(), Value::from(sim_mips)),
        ]
        .into_iter()
        .collect();
        let tenant_map: Value = tenants
            .iter()
            .map(|t| {
                let line: Value = [
                    ("built".to_string(), Value::from(t.pool.built)),
                    ("free".to_string(), Value::from(t.pool.free)),
                    ("quarantined".to_string(), Value::from(t.pool.quarantined)),
                    ("inflight".to_string(), Value::from(t.inflight)),
                    ("max_inflight".to_string(), Value::from(t.max_inflight)),
                ]
                .into_iter()
                .collect();
                (t.name.clone(), line)
            })
            .collect();
        [
            ("jobs".to_string(), jobs),
            ("items".to_string(), items),
            (
                "protocol_errors".to_string(),
                Value::from(get(&self.protocol_errors)),
            ),
            (
                "idle_timeouts".to_string(),
                Value::from(get(&self.idle_timeouts)),
            ),
            ("totals".to_string(), totals),
            ("tenants".to_string(), tenant_map),
        ]
        .into_iter()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSummary;

    #[test]
    fn snapshot_carries_tenant_occupancy_and_totals() {
        let stats = ServerStats::default();
        stats.jobs_accepted.fetch_add(2, Ordering::Relaxed);
        stats.absorb_job(
            &JobSummary {
                items: 5,
                ok: 4,
                failed: 1,
                rejected: 0,
                recovered: 1,
                cycles: 100,
                instructions: 2_000_000,
            },
            std::time::Duration::from_secs(1),
        );
        let snap = stats.snapshot(&[TenantStats {
            name: "acme".to_string(),
            pool: PoolStats {
                built: 3,
                free: 2,
                quarantined: 1,
            },
            inflight: 1,
            max_inflight: 4,
        }]);
        assert_eq!(
            snap.get("jobs").unwrap().get("accepted").unwrap().as_u64(),
            Some(2)
        );
        assert_eq!(
            snap.get("items").unwrap().get("ok").unwrap().as_u64(),
            Some(4)
        );
        let tenant = snap.get("tenants").unwrap().get("acme").unwrap();
        assert_eq!(tenant.get("quarantined").unwrap().as_u64(), Some(1));
        let mips = snap
            .get("totals")
            .unwrap()
            .get("sim_mips")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((mips - 2.0).abs() < 1e-9, "2M insts / 1s = 2 sim-MIPS");
        // The wire shape is valid JSON end-to-end.
        assert!(Value::parse(&snap.dump()).is_ok());
    }
}
