//! Length-prefixed framing for the `qzserved` wire protocol.
//!
//! Every frame is a 4-byte big-endian payload length followed by that
//! many bytes of UTF-8 JSON. The prefix is bounded by [`MAX_FRAME`] so
//! a hostile or corrupt length can never make the daemon allocate or
//! buffer unboundedly — oversized prefixes are a typed error, and the
//! connection is closed without reading the claimed payload.
//!
//! Framing errors are split by what they poison:
//!
//! * [`WireError::Truncated`] / [`WireError::Oversized`] /
//!   [`WireError::Io`] corrupt the *stream position* — the receiver can
//!   no longer tell where the next frame starts, so the connection must
//!   close ([`WireError::is_fatal`]);
//! * [`WireError::BadPayload`] arrives in a well-delimited frame — the
//!   receiver reports it and keeps serving the connection.

use quetzal_trace::json::Value;
use std::io::{ErrorKind, Read, Write};

/// Hard bound on a frame's payload length (16 MiB). A 30 Kbp long-read
/// batch of a few hundred pairs fits comfortably; a corrupt length
/// prefix does not get to allocate gigabytes.
pub const MAX_FRAME: usize = 16 << 20;

/// A framing or payload error on one connection.
#[derive(Debug)]
pub enum WireError {
    /// The peer disconnected mid-length or mid-payload.
    Truncated {
        /// Bytes the frame still owed when the stream ended.
        missing: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized {
        /// The claimed payload length.
        claimed: usize,
    },
    /// The payload is not UTF-8 JSON.
    BadPayload(String),
    /// Transport error from the socket / pipe.
    Io(std::io::Error),
}

impl WireError {
    /// Whether the error desynchronised the stream (the receiver can no
    /// longer find the next frame boundary and must close).
    pub fn is_fatal(&self) -> bool {
        !matches!(self, WireError::BadPayload(_))
    }

    /// Whether the error is a read-deadline expiry (the socket's
    /// configured read timeout elapsed), as opposed to a broken stream.
    /// Platforms report this as either `TimedOut` or `WouldBlock`.
    pub fn is_timeout(&self) -> bool {
        matches!(self, WireError::Io(e)
            if e.kind() == ErrorKind::TimedOut || e.kind() == ErrorKind::WouldBlock)
    }

    /// Short machine-readable kind, used in typed `error` frames.
    pub fn kind(&self) -> &'static str {
        match self {
            WireError::Truncated { .. } => "truncated",
            WireError::Oversized { .. } => "oversized",
            WireError::BadPayload(_) => "bad-payload",
            WireError::Io(_) => "io",
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { missing } => {
                write!(f, "stream ended mid-frame ({missing} byte(s) missing)")
            }
            WireError::Oversized { claimed } => {
                write!(
                    f,
                    "frame of {claimed} bytes exceeds the {MAX_FRAME}-byte bound"
                )
            }
            WireError::BadPayload(msg) => write!(f, "bad frame payload: {msg}"),
            WireError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

/// Reads exactly `buf.len()` bytes, reporting clean EOF at a frame
/// boundary as `Ok(false)` when `at_boundary` is set.
fn read_exact_or_eof(
    r: &mut impl Read,
    buf: &mut [u8],
    at_boundary: bool,
) -> Result<bool, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && at_boundary {
                    Ok(false)
                } else {
                    Err(WireError::Truncated {
                        missing: buf.len() - filled,
                    })
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(true)
}

/// Reads one frame's raw payload. `Ok(None)` is a clean EOF exactly at
/// a frame boundary — the peer finished and hung up.
///
/// # Errors
///
/// Returns [`WireError`] on truncation, an oversized prefix, or
/// transport failure.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut prefix = [0u8; 4];
    if !read_exact_or_eof(r, &mut prefix, true)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversized { claimed: len });
    }
    let mut payload = vec![0u8; len];
    read_exact_or_eof(r, &mut payload, false)?;
    Ok(Some(payload))
}

/// Reads one frame and parses its payload as JSON. Payload problems
/// (bad UTF-8, bad JSON) come back as the non-fatal
/// [`WireError::BadPayload`] — the frame boundary itself was sound.
///
/// # Errors
///
/// Returns [`WireError`] on framing or payload failure.
pub fn read_value(r: &mut impl Read) -> Result<Option<Value>, WireError> {
    let Some(payload) = read_frame(r)? else {
        return Ok(None);
    };
    let text = std::str::from_utf8(&payload)
        .map_err(|e| WireError::BadPayload(format!("invalid UTF-8: {e}")))?;
    let value = Value::parse(text).map_err(|e| WireError::BadPayload(e.to_string()))?;
    Ok(Some(value))
}

/// Writes one frame.
///
/// # Errors
///
/// Returns [`WireError::Io`] on transport failure (payloads over
/// [`MAX_FRAME`] are a caller bug and surface as `Oversized`).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME {
        return Err(WireError::Oversized {
            claimed: payload.len(),
        });
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Serialises and writes one JSON frame.
///
/// # Errors
///
/// Returns [`WireError::Io`] on transport failure.
pub fn write_value(w: &mut impl Write, value: &Value) -> Result<(), WireError> {
    write_frame(w, value.dump().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        let v = Value::parse(r#"{"type":"ping"}"#).unwrap();
        write_value(&mut buf, &v).unwrap();
        write_value(&mut buf, &Value::Array(vec![])).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_value(&mut r).unwrap(), Some(v));
        assert_eq!(read_value(&mut r).unwrap(), Some(Value::Array(vec![])));
        assert_eq!(read_value(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn truncated_length_is_typed() {
        let mut r: &[u8] = &[0, 0, 1];
        let err = read_frame(&mut r).unwrap_err();
        assert!(matches!(err, WireError::Truncated { missing: 1 }));
        assert!(err.is_fatal());
    }

    #[test]
    fn truncated_payload_is_typed() {
        let mut buf = 8u32.to_be_bytes().to_vec();
        buf.extend_from_slice(b"abc");
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, WireError::Truncated { missing: 5 }));
    }

    #[test]
    fn oversized_prefix_is_rejected_without_allocating() {
        let mut r: &[u8] = &u32::MAX.to_be_bytes();
        let err = read_frame(&mut r).unwrap_err();
        assert!(matches!(err, WireError::Oversized { .. }));
        assert!(err.is_fatal());
    }

    #[test]
    fn garbage_payload_is_nonfatal() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"not json {{{").unwrap();
        let err = read_value(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, WireError::BadPayload(_)));
        assert!(!err.is_fatal(), "payload errors keep the connection");
    }

    #[test]
    fn non_utf8_payload_is_nonfatal() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0xff, 0xfe, 0x80]).unwrap();
        let err = read_value(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, WireError::BadPayload(_)));
    }
}
