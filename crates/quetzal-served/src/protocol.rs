//! Typed request/response frames of the `qzserved` protocol.
//!
//! Every frame is one JSON object with a `type` member (see
//! DESIGN.md §11 for the full table). Parsing is total: anything the
//! grammar does not cover comes back as a typed error, never a panic —
//! the protocol-robustness test feeds this module seeded garbage.

use crate::job::{JobSpec, JobSummary};
use quetzal_trace::json::Value;

/// A client-to-daemon frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Read the daemon's counters.
    Stats,
    /// Drain in-flight jobs and exit.
    Shutdown,
    /// Run a batch job under a tenant.
    Submit {
        /// Tenant name (pools and quotas are per tenant).
        tenant: String,
        /// The job.
        job: JobSpec,
    },
}

impl Request {
    /// Parses a request frame.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown types or malformed
    /// bodies.
    pub fn from_value(v: &Value) -> Result<Request, String> {
        match v.get("type").and_then(Value::as_str) {
            Some("ping") => Ok(Request::Ping),
            Some("stats") => Ok(Request::Stats),
            Some("shutdown") => Ok(Request::Shutdown),
            Some("submit") => {
                let tenant = v
                    .get("tenant")
                    .and_then(Value::as_str)
                    .unwrap_or("default")
                    .to_string();
                if tenant.is_empty() || tenant.len() > 64 {
                    return Err("tenant name must be 1..=64 characters".to_string());
                }
                let job = v.get("job").ok_or("missing object field 'job'")?;
                Ok(Request::Submit {
                    tenant,
                    job: JobSpec::from_value(job)?,
                })
            }
            Some(other) => Err(format!(
                "unknown request type '{other}' (ping|stats|shutdown|submit)"
            )),
            None => Err("missing string field 'type'".to_string()),
        }
    }

    /// Renders the request to its wire object.
    pub fn to_value(&self) -> Value {
        match self {
            Request::Ping => obj([("type", Value::from("ping"))]),
            Request::Stats => obj([("type", Value::from("stats"))]),
            Request::Shutdown => obj([("type", Value::from("shutdown"))]),
            Request::Submit { tenant, job } => obj([
                ("type", Value::from("submit")),
                ("tenant", Value::from(tenant.clone())),
                ("job", job.to_value()),
            ]),
        }
    }
}

/// A daemon-to-client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// The job passed admission; item frames follow.
    Accepted {
        /// The tenant the job was admitted under.
        tenant: String,
        /// Items the daemon will stream frames for.
        items: u64,
    },
    /// Backpressure: the tenant is at its in-flight quota. The typed
    /// alternative to buffering — resubmit later.
    Busy {
        /// The tenant that is saturated.
        tenant: String,
        /// Jobs currently in flight for the tenant.
        inflight: u64,
        /// The tenant's quota.
        max: u64,
    },
    /// The daemon is draining for shutdown and admits nothing new.
    Draining,
    /// One healthy item (streamed in item order).
    Item {
        /// Item index within the job.
        item: usize,
        /// Algorithm result (score / filter verdict; 0 for fault jobs).
        value: i64,
        /// Simulated cycles the item cost.
        cycles: u64,
        /// Instructions the item retired.
        instructions: u64,
        /// Present if the first attempt failed and the fresh-machine
        /// retry recovered: `(cause kind, message)`.
        recovered: Option<(&'static str, String)>,
    },
    /// One failed item (streamed in item order).
    ItemFailed {
        /// Item index within the job.
        item: usize,
        /// Failure kind: `sim`, `panic`, or `rejected`.
        cause: &'static str,
        /// Human-readable detail (typed [`SimError`] display, panic
        /// payload, or the static verifier's summary).
        message: String,
    },
    /// One completed ingestion shard (streamed in shard order by
    /// `submit{kind:"ingest"}` jobs; the durable checkpoint for the
    /// shard is already committed when this frame is sent).
    ShardDone {
        /// Shard index.
        shard: u64,
        /// Global index of the shard's first item.
        start: u64,
        /// Items in the shard.
        count: u64,
        /// Items that produced a result.
        ok: u64,
        /// Items that failed.
        failed: u64,
        /// Items recovered by the fresh-machine retry.
        recovered: u64,
        /// Simulated cycles over healthy items.
        cycles: u64,
        /// Retired instructions over healthy items.
        instructions: u64,
        /// The shard was satisfied from an existing checkpoint.
        resumed: bool,
        /// Quarantine cause when the shard hit its deadline / budget.
        quarantined: Option<String>,
        /// Checksum of the shard's output lines (16-digit hex — full
        /// u64 range, which JSON integers cannot carry exactly).
        output_fnv: String,
    },
    /// Job finished; aggregate counters.
    Done(JobSummary),
    /// Daemon counters (reply to [`Request::Stats`]).
    Stats(Value),
    /// Final frame of a shutdown: the daemon drained and is exiting.
    /// Carries the final stats object (quarantine tallies included).
    Bye(Value),
    /// Typed error: protocol violations, admission failures, internal
    /// faults. `kind` is machine-readable, `message` human-readable.
    Error {
        /// Machine-readable kind (`bad-frame`, `bad-request`, …).
        kind: &'static str,
        /// Human-readable detail.
        message: String,
    },
}

fn obj<const N: usize>(fields: [(&str, Value); N]) -> Value {
    fields
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect()
}

/// Leaks nothing: maps a parsed cause string back to the static strs
/// the enum carries (the cause vocabulary is closed).
fn cause_str(s: &str) -> Result<&'static str, String> {
    match s {
        "sim" => Ok("sim"),
        "panic" => Ok("panic"),
        "rejected" => Ok("rejected"),
        other => Err(format!("unknown cause '{other}'")),
    }
}

fn error_kind_str(s: &str) -> &'static str {
    match s {
        "bad-frame" => "bad-frame",
        "bad-request" => "bad-request",
        "tenant-limit" => "tenant-limit",
        "idle-timeout" => "idle-timeout",
        "internal" => "internal",
        _ => "error",
    }
}

impl Response {
    /// Renders the response to its wire object.
    pub fn to_value(&self) -> Value {
        match self {
            Response::Pong => obj([("type", Value::from("pong"))]),
            Response::Accepted { tenant, items } => obj([
                ("type", Value::from("accepted")),
                ("tenant", Value::from(tenant.clone())),
                ("items", Value::from(*items)),
            ]),
            Response::Busy {
                tenant,
                inflight,
                max,
            } => obj([
                ("type", Value::from("busy")),
                ("tenant", Value::from(tenant.clone())),
                ("inflight", Value::from(*inflight)),
                ("max", Value::from(*max)),
            ]),
            Response::Draining => obj([("type", Value::from("draining"))]),
            Response::Item {
                item,
                value,
                cycles,
                instructions,
                recovered,
            } => {
                let mut fields = vec![
                    ("type", Value::from("item")),
                    ("item", Value::from(*item)),
                    ("value", Value::from(*value)),
                    ("cycles", Value::from(*cycles)),
                    ("instructions", Value::from(*instructions)),
                ];
                if let Some((cause, message)) = recovered {
                    fields.push(("recovered_cause", Value::from(*cause)));
                    fields.push(("recovered_message", Value::from(message.clone())));
                }
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect()
            }
            Response::ItemFailed {
                item,
                cause,
                message,
            } => obj([
                ("type", Value::from("item_failed")),
                ("item", Value::from(*item)),
                ("cause", Value::from(*cause)),
                ("message", Value::from(message.clone())),
            ]),
            Response::ShardDone {
                shard,
                start,
                count,
                ok,
                failed,
                recovered,
                cycles,
                instructions,
                resumed,
                quarantined,
                output_fnv,
            } => {
                let mut fields = vec![
                    ("type", Value::from("shard_done")),
                    ("shard", Value::from(*shard)),
                    ("start", Value::from(*start)),
                    ("count", Value::from(*count)),
                    ("ok", Value::from(*ok)),
                    ("failed", Value::from(*failed)),
                    ("recovered", Value::from(*recovered)),
                    ("cycles", Value::from(*cycles)),
                    ("instructions", Value::from(*instructions)),
                    ("resumed", Value::from(*resumed)),
                    ("output_fnv", Value::from(output_fnv.clone())),
                ];
                if let Some(cause) = quarantined {
                    fields.push(("quarantined", Value::from(cause.clone())));
                }
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect()
            }
            Response::Done(s) => obj([
                ("type", Value::from("done")),
                ("items", Value::from(s.items)),
                ("ok", Value::from(s.ok)),
                ("failed", Value::from(s.failed)),
                ("rejected", Value::from(s.rejected)),
                ("recovered", Value::from(s.recovered)),
                ("cycles", Value::from(s.cycles)),
                ("instructions", Value::from(s.instructions)),
            ]),
            Response::Stats(v) => obj([("type", Value::from("stats")), ("stats", v.clone())]),
            Response::Bye(v) => obj([("type", Value::from("bye")), ("stats", v.clone())]),
            Response::Error { kind, message } => obj([
                ("type", Value::from("error")),
                ("kind", Value::from(*kind)),
                ("message", Value::from(message.clone())),
            ]),
        }
    }

    /// Parses a response frame (the client side).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown types or malformed
    /// bodies.
    pub fn from_value(v: &Value) -> Result<Response, String> {
        let str_of = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field '{key}'"))
        };
        let u64_of = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing integer field '{key}'"))
        };
        match v.get("type").and_then(Value::as_str) {
            Some("pong") => Ok(Response::Pong),
            Some("accepted") => Ok(Response::Accepted {
                tenant: str_of("tenant")?,
                items: u64_of("items")?,
            }),
            Some("busy") => Ok(Response::Busy {
                tenant: str_of("tenant")?,
                inflight: u64_of("inflight")?,
                max: u64_of("max")?,
            }),
            Some("draining") => Ok(Response::Draining),
            Some("item") => Ok(Response::Item {
                item: u64_of("item")? as usize,
                value: v
                    .get("value")
                    .and_then(Value::as_i64)
                    .ok_or("missing integer field 'value'")?,
                cycles: u64_of("cycles")?,
                instructions: u64_of("instructions")?,
                recovered: match v.get("recovered_cause") {
                    None => None,
                    Some(c) => Some((
                        cause_str(c.as_str().ok_or("'recovered_cause' must be a string")?)?,
                        str_of("recovered_message")?,
                    )),
                },
            }),
            Some("item_failed") => Ok(Response::ItemFailed {
                item: u64_of("item")? as usize,
                cause: cause_str(&str_of("cause")?)?,
                message: str_of("message")?,
            }),
            Some("shard_done") => Ok(Response::ShardDone {
                shard: u64_of("shard")?,
                start: u64_of("start")?,
                count: u64_of("count")?,
                ok: u64_of("ok")?,
                failed: u64_of("failed")?,
                recovered: u64_of("recovered")?,
                cycles: u64_of("cycles")?,
                instructions: u64_of("instructions")?,
                resumed: v
                    .get("resumed")
                    .and_then(Value::as_bool)
                    .ok_or("missing boolean field 'resumed'")?,
                quarantined: match v.get("quarantined") {
                    None => None,
                    Some(c) => Some(
                        c.as_str()
                            .ok_or("'quarantined' must be a string")?
                            .to_string(),
                    ),
                },
                output_fnv: str_of("output_fnv")?,
            }),
            Some("done") => Ok(Response::Done(JobSummary {
                items: u64_of("items")?,
                ok: u64_of("ok")?,
                failed: u64_of("failed")?,
                rejected: u64_of("rejected")?,
                recovered: u64_of("recovered")?,
                cycles: u64_of("cycles")?,
                instructions: u64_of("instructions")?,
            })),
            Some("stats") => Ok(Response::Stats(
                v.get("stats").cloned().ok_or("missing field 'stats'")?,
            )),
            Some("bye") => Ok(Response::Bye(
                v.get("stats").cloned().ok_or("missing field 'stats'")?,
            )),
            Some("error") => Ok(Response::Error {
                kind: error_kind_str(&str_of("kind")?),
                message: str_of("message")?,
            }),
            Some(other) => Err(format!("unknown response type '{other}'")),
            None => Err("missing string field 'type'".to_string()),
        }
    }
}

/// Renders a job's frame stream as deterministic report text: one
/// compact JSON document per line, item frames and the final `done`
/// frame only. Both the daemon-served and offline paths produce their
/// reports through this function, so "byte-identical" is checkable with
/// a plain string compare.
pub fn render_report(frames: &[Response]) -> String {
    let mut out = String::new();
    for frame in frames {
        if matches!(
            frame,
            Response::Item { .. }
                | Response::ItemFailed { .. }
                | Response::ShardDone { .. }
                | Response::Done(_)
        ) {
            out.push_str(&frame.to_value().dump());
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Submit {
                tenant: "acme".to_string(),
                job: JobSpec::Fault {
                    seed: 7,
                    cases: vec![1, 2],
                },
            },
        ];
        for req in reqs {
            let wire = req.to_value().dump();
            let back = Request::from_value(&Value::parse(&wire).unwrap()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let frames = [
            Response::Pong,
            Response::Accepted {
                tenant: "t".to_string(),
                items: 3,
            },
            Response::Busy {
                tenant: "t".to_string(),
                inflight: 4,
                max: 4,
            },
            Response::Draining,
            Response::Item {
                item: 2,
                value: -17,
                cycles: 1234,
                instructions: 999,
                recovered: Some(("panic", "boom".to_string())),
            },
            Response::Item {
                item: 3,
                value: 5,
                cycles: 1,
                instructions: 1,
                recovered: None,
            },
            Response::ItemFailed {
                item: 5,
                cause: "sim",
                message: "instruction budget".to_string(),
            },
            Response::ShardDone {
                shard: 2,
                start: 512,
                count: 256,
                ok: 255,
                failed: 1,
                recovered: 0,
                cycles: 99,
                instructions: 42,
                resumed: true,
                quarantined: Some("wall deadline 5ms exceeded".to_string()),
                output_fnv: "cbf29ce484222325".to_string(),
            },
            Response::ShardDone {
                shard: 0,
                start: 0,
                count: 4,
                ok: 4,
                failed: 0,
                recovered: 0,
                cycles: 1,
                instructions: 1,
                resumed: false,
                quarantined: None,
                output_fnv: "0000000000000000".to_string(),
            },
            Response::Done(JobSummary {
                items: 6,
                ok: 4,
                failed: 1,
                rejected: 1,
                recovered: 1,
                cycles: 10,
                instructions: 20,
            }),
            Response::Error {
                kind: "bad-request",
                message: "nope".to_string(),
            },
        ];
        for frame in frames {
            let wire = frame.to_value().dump();
            let back = Response::from_value(&Value::parse(&wire).unwrap()).unwrap();
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn unknown_frames_are_typed_errors() {
        let v = Value::parse(r#"{"type":"warp"}"#).unwrap();
        assert!(Request::from_value(&v).unwrap_err().contains("unknown"));
        assert!(Response::from_value(&v).unwrap_err().contains("unknown"));
        let v = Value::parse(r#"{"no_type":1}"#).unwrap();
        assert!(Request::from_value(&v).is_err());
    }

    #[test]
    fn report_rendering_is_line_per_frame() {
        let frames = [
            Response::Accepted {
                tenant: "t".to_string(),
                items: 1,
            },
            Response::Item {
                item: 0,
                value: 1,
                cycles: 2,
                instructions: 3,
                recovered: None,
            },
            Response::Done(JobSummary::default()),
        ];
        let report = render_report(&frames);
        assert_eq!(
            report.lines().count(),
            2,
            "accepted is not part of the report"
        );
        assert!(report.starts_with('{') && report.ends_with('\n'));
    }
}
