//! Job specifications and the execution core shared by the daemon and
//! the offline path.
//!
//! [`execute`] is the *only* place a job turns into simulations: the
//! daemon drives it per connection over a tenant's long-lived
//! [`MachinePool`], and `qzclient --offline` (plus the loopback e2e
//! test) drives it over a throwaway pool. Both paths therefore emit
//! byte-identical frame streams for the same job — the equivalence the
//! service's correctness story rests on.
//!
//! Two job kinds exist:
//!
//! * **align** — a batch of encoded sequence pairs run through one of
//!   the five evaluated algorithms at a chosen acceleration tier, with
//!   optional machine budgets. The in-tree kernels are kept
//!   statically `Clean` by the `qzverify` CI gate, so admission here is
//!   input validation (alphabet, lengths) rather than verification.
//! * **fault** — deterministic mutant programs from the fault-injection
//!   sweep's [`FaultPlan`], replayed by `(seed, case)`. These are the
//!   hostile inputs: every staged program runs through
//!   `quetzal-verify` first, and provably-fatal ones are rejected at
//!   admission ([`FailureCause::Rejected`]) **before any machine is
//!   checked out of the tenant's pool**.

use crate::protocol::Response;
use quetzal::ingest::{self, pair_digest, IngestConfig, ItemOutput, ShardDeadline};
use quetzal::uarch::RunStats;
use quetzal::{BatchRunner, FailureCause, FaultPlan, Machine, MachinePool, Program, RunReport};
use quetzal_algos::Tier;
use quetzal_bench::workloads::try_simulate_pair_outcome;
use quetzal_genomics::dataset::SeqPair;
use quetzal_genomics::fasta::PairReader;
use quetzal_genomics::{Alphabet, Seq};
use quetzal_trace::json::Value;
use std::io::BufReader;
use std::path::Path;
use std::time::Duration;

/// Fault-job machine budgets — the fault-injection sweep's constants,
/// so a served fault case reproduces the sweep's outcome exactly.
pub const FAULT_PAGE_BUDGET: usize = 512;
/// Instruction budget of a served fault case (sweep constant).
pub const FAULT_INST_BUDGET: u64 = 20_000;
/// Cycle budget of a served fault case (sweep constant).
pub const FAULT_CYCLE_BUDGET: u64 = 2_000_000;

/// Optional per-item machine budgets of an align job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budgets {
    /// Retired-instruction budget (`SimError::InstLimit` beyond it).
    pub insts: Option<u64>,
    /// Cycle budget (`SimError::CycleLimit` beyond it).
    pub cycles: Option<u64>,
    /// Page budget (`SimError::MemoryFault` beyond it).
    pub pages: Option<usize>,
}

impl Budgets {
    fn is_default(&self) -> bool {
        *self == Budgets::default()
    }

    fn apply(&self, machine: &mut Machine) {
        if let Some(n) = self.insts {
            machine.core_mut().set_budget(n);
        }
        if let Some(n) = self.cycles {
            machine.core_mut().set_cycle_budget(n);
        }
        if let Some(n) = self.pages {
            machine.core_mut().state_mut().mem.set_page_budget(n);
        }
    }
}

/// One batch job, as submitted over the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// Align (or filter) a batch of sequence pairs.
    Align {
        /// The algorithm (WFA, BiWFA, SS, SW, NW).
        algo: quetzal_bench::workloads::Algo,
        /// The acceleration tier.
        tier: Tier,
        /// Sequence alphabet of every pair.
        alphabet: Alphabet,
        /// SneakySnake edit threshold (ignored by the other algorithms).
        ss_threshold: u32,
        /// Optional machine budgets applied to every item.
        budgets: Budgets,
        /// The pairs to process.
        pairs: Vec<SeqPair>,
    },
    /// Replay fault-injection sweep cases (hostile mutant programs).
    Fault {
        /// The sweep seed.
        seed: u64,
        /// Case indices to replay.
        cases: Vec<u64>,
    },
    /// Crash-safe streaming ingestion of a daemon-local pair file: the
    /// durable long-running job. Items stream from disk in bounded
    /// shards, every shard commits a checkpoint, and resubmitting the
    /// same job after a crash resumes from the last committed shard
    /// (resumed shards stream back with `resumed:true`).
    Ingest {
        /// Daemon-local pair-file path (one `pattern<TAB>text` per line).
        input: String,
        /// Daemon-local checkpoint directory (created if missing).
        checkpoint_dir: String,
        /// Optional daemon-local path for the final concatenated report.
        output: Option<String>,
        /// The algorithm (WFA, BiWFA, SS, SW, NW).
        algo: quetzal_bench::workloads::Algo,
        /// The acceleration tier.
        tier: Tier,
        /// Sequence alphabet of the pair file.
        alphabet: Alphabet,
        /// SneakySnake edit threshold (ignored by the other algorithms).
        ss_threshold: u32,
        /// Optional machine budgets applied to every item.
        budgets: Budgets,
        /// Items per shard (checkpoint granularity and memory bound).
        shard_items: u64,
        /// Optional per-shard wall-clock deadline in milliseconds
        /// (nondeterministic; quarantines the shard's remainder).
        deadline_ms: Option<u64>,
        /// Optional per-shard retired-instruction budget
        /// (deterministic; quarantines the shard's remainder).
        shard_insts: Option<u64>,
        /// Re-run previously quarantined shards instead of skipping.
        retry_quarantined: bool,
    },
}

fn algo_code(algo: quetzal_bench::workloads::Algo) -> &'static str {
    use quetzal_bench::workloads::Algo;
    match algo {
        Algo::Wfa => "wfa",
        Algo::BiWfa => "biwfa",
        Algo::Ss => "ss",
        Algo::Sw => "sw",
        Algo::Nw => "nw",
    }
}

fn parse_algo(code: &str) -> Result<quetzal_bench::workloads::Algo, String> {
    use quetzal_bench::workloads::Algo;
    match code {
        "wfa" => Ok(Algo::Wfa),
        "biwfa" => Ok(Algo::BiWfa),
        "ss" => Ok(Algo::Ss),
        "sw" => Ok(Algo::Sw),
        "nw" => Ok(Algo::Nw),
        other => Err(format!("unknown algo '{other}' (wfa|biwfa|ss|sw|nw)")),
    }
}

fn tier_code(tier: Tier) -> &'static str {
    match tier {
        Tier::Base => "base",
        Tier::Vec => "vec",
        Tier::Quetzal => "quetzal",
        Tier::QuetzalC => "quetzal+c",
    }
}

fn parse_tier(code: &str) -> Result<Tier, String> {
    match code {
        "base" => Ok(Tier::Base),
        "vec" => Ok(Tier::Vec),
        "quetzal" => Ok(Tier::Quetzal),
        "quetzal+c" => Ok(Tier::QuetzalC),
        other => Err(format!(
            "unknown tier '{other}' (base|vec|quetzal|quetzal+c)"
        )),
    }
}

fn alphabet_code(alphabet: Alphabet) -> &'static str {
    match alphabet {
        Alphabet::Dna => "dna",
        Alphabet::Rna => "rna",
        Alphabet::Protein => "protein",
    }
}

fn parse_alphabet(code: &str) -> Result<Alphabet, String> {
    match code {
        "dna" => Ok(Alphabet::Dna),
        "rna" => Ok(Alphabet::Rna),
        "protein" => Ok(Alphabet::Protein),
        other => Err(format!("unknown alphabet '{other}' (dna|rna|protein)")),
    }
}

fn str_field<'v>(v: &'v Value, key: &str) -> Result<&'v str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing integer field '{key}'"))
}

impl JobSpec {
    /// Parses a job object (the `job` member of a `submit` frame).
    ///
    /// # Errors
    ///
    /// Returns a human-readable admission error for anything malformed:
    /// unknown kind/algo/tier, symbols outside the declared alphabet,
    /// empty batches, or out-of-range numbers.
    pub fn from_value(v: &Value) -> Result<JobSpec, String> {
        match str_field(v, "kind")? {
            "align" => {
                let algo = parse_algo(str_field(v, "algo")?)?;
                let tier = parse_tier(str_field(v, "tier")?)?;
                let alphabet = parse_alphabet(str_field(v, "alphabet")?)?;
                let ss_threshold = match v.get("ss_threshold") {
                    None => 100,
                    Some(t) => {
                        u32::try_from(t.as_u64().ok_or("'ss_threshold' must be an integer")?)
                            .map_err(|_| "'ss_threshold' out of range".to_string())?
                    }
                };
                let budgets = match v.get("budgets") {
                    None => Budgets::default(),
                    Some(b) => Budgets {
                        insts: b.get("insts").and_then(Value::as_u64),
                        cycles: b.get("cycles").and_then(Value::as_u64),
                        pages: b.get("pages").and_then(Value::as_u64).map(|n| n as usize),
                    },
                };
                let raw_pairs = v
                    .get("pairs")
                    .and_then(Value::as_array)
                    .ok_or("missing array field 'pairs'")?;
                if raw_pairs.is_empty() {
                    return Err("empty batch".to_string());
                }
                let mut pairs = Vec::with_capacity(raw_pairs.len());
                for (i, p) in raw_pairs.iter().enumerate() {
                    let pattern = Seq::new(str_field(p, "pattern")?.as_bytes(), alphabet)
                        .map_err(|e| format!("pair {i} pattern: {e}"))?;
                    let text = Seq::new(str_field(p, "text")?.as_bytes(), alphabet)
                        .map_err(|e| format!("pair {i} text: {e}"))?;
                    pairs.push(SeqPair { pattern, text });
                }
                Ok(JobSpec::Align {
                    algo,
                    tier,
                    alphabet,
                    ss_threshold,
                    budgets,
                    pairs,
                })
            }
            "fault" => {
                let seed = u64_field(v, "seed")?;
                let raw = v
                    .get("cases")
                    .and_then(Value::as_array)
                    .ok_or("missing array field 'cases'")?;
                if raw.is_empty() {
                    return Err("empty batch".to_string());
                }
                let cases = raw
                    .iter()
                    .map(|c| c.as_u64().ok_or("'cases' must hold integers".to_string()))
                    .collect::<Result<Vec<u64>, String>>()?;
                Ok(JobSpec::Fault { seed, cases })
            }
            "ingest" => {
                let input = str_field(v, "input")?.to_string();
                if input.is_empty() {
                    return Err("'input' must be a non-empty path".to_string());
                }
                let checkpoint_dir = str_field(v, "checkpoint_dir")?.to_string();
                if checkpoint_dir.is_empty() {
                    return Err("'checkpoint_dir' must be a non-empty path".to_string());
                }
                let output = match v.get("output") {
                    None => None,
                    Some(o) => Some(o.as_str().ok_or("'output' must be a string")?.to_string()),
                };
                let algo = parse_algo(str_field(v, "algo")?)?;
                let tier = parse_tier(str_field(v, "tier")?)?;
                let alphabet = parse_alphabet(str_field(v, "alphabet")?)?;
                let ss_threshold = match v.get("ss_threshold") {
                    None => 100,
                    Some(t) => {
                        u32::try_from(t.as_u64().ok_or("'ss_threshold' must be an integer")?)
                            .map_err(|_| "'ss_threshold' out of range".to_string())?
                    }
                };
                let budgets = match v.get("budgets") {
                    None => Budgets::default(),
                    Some(b) => Budgets {
                        insts: b.get("insts").and_then(Value::as_u64),
                        cycles: b.get("cycles").and_then(Value::as_u64),
                        pages: b.get("pages").and_then(Value::as_u64).map(|n| n as usize),
                    },
                };
                let shard_items = match v.get("shard_items") {
                    None => 256,
                    Some(n) => {
                        let n = n.as_u64().ok_or("'shard_items' must be an integer")?;
                        if n == 0 {
                            return Err("'shard_items' must be at least 1".to_string());
                        }
                        n
                    }
                };
                Ok(JobSpec::Ingest {
                    input,
                    checkpoint_dir,
                    output,
                    algo,
                    tier,
                    alphabet,
                    ss_threshold,
                    budgets,
                    shard_items,
                    deadline_ms: v.get("deadline_ms").and_then(Value::as_u64),
                    shard_insts: v.get("shard_insts").and_then(Value::as_u64),
                    retry_quarantined: v
                        .get("retry_quarantined")
                        .and_then(Value::as_bool)
                        .unwrap_or(false),
                })
            }
            other => Err(format!("unknown job kind '{other}' (align|fault|ingest)")),
        }
    }

    /// Renders the job back to its wire object (what `qzclient` sends).
    pub fn to_value(&self) -> Value {
        match self {
            JobSpec::Align {
                algo,
                tier,
                alphabet,
                ss_threshold,
                budgets,
                pairs,
            } => {
                let pair_values: Vec<Value> = pairs
                    .iter()
                    .map(|p| {
                        [
                            (
                                "pattern".to_string(),
                                Value::from(
                                    String::from_utf8_lossy(p.pattern.as_bytes()).into_owned(),
                                ),
                            ),
                            (
                                "text".to_string(),
                                Value::from(
                                    String::from_utf8_lossy(p.text.as_bytes()).into_owned(),
                                ),
                            ),
                        ]
                        .into_iter()
                        .collect()
                    })
                    .collect();
                let mut fields = vec![
                    ("kind".to_string(), Value::from("align")),
                    ("algo".to_string(), Value::from(algo_code(*algo))),
                    ("tier".to_string(), Value::from(tier_code(*tier))),
                    (
                        "alphabet".to_string(),
                        Value::from(alphabet_code(*alphabet)),
                    ),
                    (
                        "ss_threshold".to_string(),
                        Value::from(u64::from(*ss_threshold)),
                    ),
                    ("pairs".to_string(), Value::Array(pair_values)),
                ];
                if !budgets.is_default() {
                    let mut b = Vec::new();
                    if let Some(n) = budgets.insts {
                        b.push(("insts".to_string(), Value::from(n)));
                    }
                    if let Some(n) = budgets.cycles {
                        b.push(("cycles".to_string(), Value::from(n)));
                    }
                    if let Some(n) = budgets.pages {
                        b.push(("pages".to_string(), Value::from(n)));
                    }
                    fields.push(("budgets".to_string(), b.into_iter().collect()));
                }
                fields.into_iter().collect()
            }
            JobSpec::Fault { seed, cases } => [
                ("kind".to_string(), Value::from("fault")),
                ("seed".to_string(), Value::from(*seed)),
                (
                    "cases".to_string(),
                    Value::Array(cases.iter().map(|&c| Value::from(c)).collect()),
                ),
            ]
            .into_iter()
            .collect(),
            JobSpec::Ingest {
                input,
                checkpoint_dir,
                output,
                algo,
                tier,
                alphabet,
                ss_threshold,
                budgets,
                shard_items,
                deadline_ms,
                shard_insts,
                retry_quarantined,
            } => {
                let mut fields = vec![
                    ("kind".to_string(), Value::from("ingest")),
                    ("input".to_string(), Value::from(input.clone())),
                    (
                        "checkpoint_dir".to_string(),
                        Value::from(checkpoint_dir.clone()),
                    ),
                    ("algo".to_string(), Value::from(algo_code(*algo))),
                    ("tier".to_string(), Value::from(tier_code(*tier))),
                    (
                        "alphabet".to_string(),
                        Value::from(alphabet_code(*alphabet)),
                    ),
                    (
                        "ss_threshold".to_string(),
                        Value::from(u64::from(*ss_threshold)),
                    ),
                    ("shard_items".to_string(), Value::from(*shard_items)),
                ];
                if let Some(path) = output {
                    fields.push(("output".to_string(), Value::from(path.clone())));
                }
                if let Some(ms) = deadline_ms {
                    fields.push(("deadline_ms".to_string(), Value::from(*ms)));
                }
                if let Some(n) = shard_insts {
                    fields.push(("shard_insts".to_string(), Value::from(*n)));
                }
                if *retry_quarantined {
                    fields.push(("retry_quarantined".to_string(), Value::from(true)));
                }
                if !budgets.is_default() {
                    let mut b = Vec::new();
                    if let Some(n) = budgets.insts {
                        b.push(("insts".to_string(), Value::from(n)));
                    }
                    if let Some(n) = budgets.cycles {
                        b.push(("cycles".to_string(), Value::from(n)));
                    }
                    if let Some(n) = budgets.pages {
                        b.push(("pages".to_string(), Value::from(n)));
                    }
                    fields.push(("budgets".to_string(), b.into_iter().collect()));
                }
                fields.into_iter().collect()
            }
        }
    }

    /// Number of items the job will stream frames for (`0` for ingest
    /// jobs: the input streams from disk, so the count is unknown at
    /// admission — progress arrives as `shard_done` frames instead).
    pub fn items(&self) -> usize {
        match self {
            JobSpec::Align { pairs, .. } => pairs.len(),
            JobSpec::Fault { cases, .. } => cases.len(),
            JobSpec::Ingest { .. } => 0,
        }
    }
}

/// Aggregate of one executed job — the payload of the final `done`
/// frame and the increment applied to the daemon's `/stats` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobSummary {
    /// Items in the job.
    pub items: u64,
    /// Items that produced a result (first attempt or retry).
    pub ok: u64,
    /// Items that failed both attempts at runtime.
    pub failed: u64,
    /// Items rejected at admission by the static verifier.
    pub rejected: u64,
    /// Items that failed once but recovered on the fresh-machine retry.
    pub recovered: u64,
    /// Merged simulated cycles over the healthy items.
    pub cycles: u64,
    /// Merged retired instructions over the healthy items.
    pub instructions: u64,
}

fn cause_frames(cause: &FailureCause) -> (&'static str, String) {
    match cause {
        FailureCause::Sim(e) => ("sim", e.to_string()),
        FailureCause::Panic(msg) => ("panic", msg.clone()),
        FailureCause::Rejected(report) => (
            "rejected",
            format!(
                "program '{}' statically rejected with {} diagnostic(s)",
                report.name(),
                report.diagnostics().len()
            ),
        ),
    }
}

/// Streams one chunk's [`RunReport`] as per-item frames, in item order.
fn emit_report(
    base: usize,
    report: &RunReport<(i64, RunStats)>,
    summary: &mut JobSummary,
    emit: &mut dyn FnMut(Response),
) {
    let mut failures = report.failures.iter().peekable();
    for (local, slot) in report.results.iter().enumerate() {
        let failure = failures.next_if(|f| f.item == local);
        match slot {
            Some((value, stats)) => {
                summary.ok += 1;
                summary.cycles += stats.cycles;
                summary.instructions += stats.instructions;
                let recovered = failure.map(|f| {
                    summary.recovered += 1;
                    cause_frames(&f.cause)
                });
                emit(Response::Item {
                    item: base + local,
                    value: *value,
                    cycles: stats.cycles,
                    instructions: stats.instructions,
                    recovered,
                });
            }
            None => {
                let failure = failure.expect("resultless item has a failure entry");
                let (cause, message) = cause_frames(&failure.cause);
                if matches!(failure.cause, FailureCause::Rejected(_)) {
                    summary.rejected += 1;
                } else {
                    summary.failed += 1;
                }
                emit(Response::ItemFailed {
                    item: base + local,
                    cause,
                    message,
                });
            }
        }
    }
}

/// Executes one job over a caller-owned pool, streaming per-item frames
/// through `emit` as chunks complete and finishing with a `done` frame.
///
/// Items run in submission order, `chunk` at a time; each chunk goes
/// through the deterministic [`BatchRunner`] merge, so the frame stream
/// is **bit-identical for every worker-thread count** — the loopback
/// e2e test pins daemon-vs-offline equality on exactly this property.
///
/// Fault-job programs are staged on a scratch (never pooled) machine
/// and statically verified before execution: provably-fatal mutants are
/// rejected without a pool checkout.
pub fn execute(
    runner: &BatchRunner,
    pool: &MachinePool,
    spec: &JobSpec,
    chunk: usize,
    emit: &mut dyn FnMut(Response),
) -> JobSummary {
    let chunk = chunk.max(1);
    let mut summary = JobSummary {
        items: spec.items() as u64,
        ..JobSummary::default()
    };
    match spec {
        JobSpec::Align {
            algo,
            tier,
            alphabet,
            ss_threshold,
            budgets,
            pairs,
        } => {
            for (index, slice) in pairs.chunks(chunk).enumerate() {
                let outcome = runner.run_machines_report_pooled(pool, slice, |m, _i, pair| {
                    budgets.apply(m);
                    let out =
                        try_simulate_pair_outcome(m, *algo, *alphabet, *ss_threshold, pair, *tier)?;
                    Ok((out.value, out.stats))
                });
                match outcome {
                    Ok(report) => emit_report(index * chunk, &report, &mut summary, emit),
                    Err(e) => {
                        emit(Response::Error {
                            kind: "internal",
                            message: e.to_string(),
                        });
                        break;
                    }
                }
            }
        }
        JobSpec::Fault { seed, cases } => {
            let plan = FaultPlan::new(*seed);
            // Stage each case on a scratch machine (reset ≡ fresh) just
            // to obtain the mutant program for static admission — the
            // tenant pool is untouched until a case is admitted.
            let mut scratch = Machine::new(pool.config().clone());
            let staged: Vec<(u64, Program)> = cases
                .iter()
                .map(|&case| {
                    scratch.reset();
                    let (program, _) = plan.stage(case, &mut scratch);
                    (case, program)
                })
                .collect();
            for (index, slice) in staged.chunks(chunk).enumerate() {
                let outcome = runner.run_machines_report_verified_pooled(
                    pool,
                    slice,
                    |(_, program)| program,
                    |m, _i, (case, _)| {
                        // Re-stage on the pooled machine: staging seeds
                        // adversarial registers and memory, so the run
                        // reproduces the sweep's outcome exactly.
                        let (program, _) = plan.stage(*case, m);
                        m.core_mut()
                            .state_mut()
                            .mem
                            .set_page_budget(FAULT_PAGE_BUDGET);
                        m.core_mut().set_budget(FAULT_INST_BUDGET);
                        m.core_mut().set_cycle_budget(FAULT_CYCLE_BUDGET);
                        let stats = m.run(&program)?;
                        Ok((0i64, stats))
                    },
                );
                match outcome {
                    Ok(report) => emit_report(index * chunk, &report, &mut summary, emit),
                    Err(e) => {
                        emit(Response::Error {
                            kind: "internal",
                            message: e.to_string(),
                        });
                        break;
                    }
                }
            }
        }
        JobSpec::Ingest {
            input,
            checkpoint_dir,
            output,
            algo,
            tier,
            alphabet,
            ss_threshold,
            budgets,
            shard_items,
            deadline_ms,
            shard_insts,
            retry_quarantined,
        } => {
            let config = IngestConfig {
                shard_items: *shard_items as usize,
                chunk_items: chunk,
                deadline: ShardDeadline {
                    wall: deadline_ms.map(Duration::from_millis),
                    instructions: *shard_insts,
                },
                heartbeat: Some(Duration::from_secs(5)),
                retry_quarantined: *retry_quarantined,
                ..IngestConfig::new(checkpoint_dir)
            };
            match std::fs::File::open(input) {
                Err(e) => emit(Response::Error {
                    kind: "internal",
                    message: format!("opening '{input}': {e}"),
                }),
                Ok(file) => {
                    let source = PairReader::new(BufReader::new(file), *alphabet);
                    let outcome = ingest::run_ingest(
                        &config,
                        runner,
                        pool,
                        source,
                        pair_digest,
                        |m, _g, pair| {
                            budgets.apply(m);
                            let out = try_simulate_pair_outcome(
                                m,
                                *algo,
                                *alphabet,
                                *ss_threshold,
                                pair,
                                *tier,
                            )?;
                            Ok(ItemOutput {
                                value: out.value,
                                cycles: out.stats.cycles,
                                instructions: out.stats.instructions,
                            })
                        },
                        |report| {
                            emit(Response::ShardDone {
                                shard: report.shard,
                                start: report.start,
                                count: report.count,
                                ok: report.ok,
                                failed: report.failed,
                                recovered: report.recovered,
                                cycles: report.cycles,
                                instructions: report.instructions,
                                resumed: report.resumed,
                                quarantined: report.quarantined.clone(),
                                output_fnv: format!("{:016x}", report.output_fnv),
                            })
                        },
                    );
                    match outcome {
                        Ok(ingested) => {
                            summary.items = ingested.items;
                            summary.ok = ingested.ok;
                            summary.failed = ingested.failed;
                            summary.recovered = ingested.recovered;
                            summary.cycles = ingested.cycles;
                            summary.instructions = ingested.instructions;
                            if let Some(path) = output {
                                if let Err(e) = ingest::concat_to_path(
                                    Path::new(checkpoint_dir),
                                    ingested.shards,
                                    Path::new(path),
                                ) {
                                    emit(Response::Error {
                                        kind: "internal",
                                        message: format!("assembling '{path}': {e}"),
                                    });
                                }
                            }
                        }
                        Err(e) => emit(Response::Error {
                            kind: "internal",
                            message: e.to_string(),
                        }),
                    }
                }
            }
        }
    }
    emit(Response::Done(summary));
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use quetzal::{ExecMode, MachineConfig};
    use quetzal_bench::workloads::Algo;
    use quetzal_genomics::dataset::DatasetSpec;

    fn align_spec(n: usize) -> JobSpec {
        let spec = DatasetSpec::d100();
        JobSpec::Align {
            algo: Algo::Ss,
            tier: Tier::QuetzalC,
            alphabet: spec.alphabet,
            ss_threshold: 8,
            budgets: Budgets::default(),
            pairs: spec.generate_n(7, n),
        }
    }

    #[test]
    fn job_specs_round_trip_through_json() {
        let align = align_spec(2);
        let fault = JobSpec::Fault {
            seed: 0xF4417,
            cases: vec![0, 3, 11],
        };
        for spec in [align, fault] {
            let wire = spec.to_value().dump();
            let back = JobSpec::from_value(&Value::parse(&wire).unwrap()).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn malformed_jobs_are_rejected_with_messages() {
        for (doc, needle) in [
            (r#"{"kind":"teleport"}"#, "unknown job kind"),
            (r#"{"kind":"align"}"#, "missing string field 'algo'"),
            (
                r#"{"kind":"align","algo":"wfa","tier":"warp","alphabet":"dna","pairs":[]}"#,
                "unknown tier",
            ),
            (
                r#"{"kind":"align","algo":"wfa","tier":"vec","alphabet":"dna","pairs":[]}"#,
                "empty batch",
            ),
            (
                r#"{"kind":"align","algo":"wfa","tier":"vec","alphabet":"dna","pairs":[{"pattern":"AXGT","text":"ACGT"}]}"#,
                "pattern",
            ),
            (r#"{"kind":"fault","seed":1,"cases":[]}"#, "empty batch"),
        ] {
            let err = JobSpec::from_value(&Value::parse(doc).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{doc} -> {err}");
        }
    }

    #[test]
    fn execute_streams_items_in_order_at_any_thread_count() {
        let spec = align_spec(3);
        let config = MachineConfig::default();
        let collect = |threads: usize, chunk: usize| {
            let runner = BatchRunner::new(threads);
            let pool = MachinePool::new(&config, runner.exec_mode());
            let mut frames = Vec::new();
            let summary = execute(&runner, &pool, &spec, chunk, &mut |f| frames.push(f));
            (frames, summary)
        };
        let (frames1, summary1) = collect(1, 2);
        let (frames4, summary4) = collect(4, 2);
        assert_eq!(frames1, frames4);
        assert_eq!(summary1, summary4);
        assert_eq!(summary1.ok, 3);
        assert_eq!(summary1.failed + summary1.rejected, 0);
        let items: Vec<usize> = frames1
            .iter()
            .filter_map(|f| match f {
                Response::Item { item, .. } => Some(*item),
                _ => None,
            })
            .collect();
        assert_eq!(items, vec![0, 1, 2]);
        assert!(matches!(frames1.last(), Some(Response::Done(_))));
    }

    #[test]
    fn fault_jobs_reject_fatal_mutants_before_checkout() {
        // A healthy window of sweep cases: some run, some fault, and —
        // crucially — statically fatal ones appear as admission
        // rejections. Compare built-machine accounting: rejected items
        // must not have checked anything out.
        let spec = JobSpec::Fault {
            seed: 0xF4417,
            cases: (0..24).collect(),
        };
        let runner = BatchRunner::new(2);
        let config = MachineConfig::default();
        let pool = MachinePool::new(&config, ExecMode::Cycle);
        let mut frames = Vec::new();
        let summary = execute(&runner, &pool, &spec, 8, &mut |f| frames.push(f));
        assert_eq!(summary.items, 24);
        assert_eq!(
            summary.ok + summary.failed + summary.rejected,
            24,
            "every item is accounted for exactly once"
        );
        assert!(
            summary.rejected > 0,
            "the sweep's early cases include provably-fatal mutants"
        );
        let rejected_frames = frames
            .iter()
            .filter(|f| {
                matches!(
                    f,
                    Response::ItemFailed {
                        cause: "rejected",
                        ..
                    }
                )
            })
            .count() as u64;
        assert_eq!(rejected_frames, summary.rejected);
    }
}
