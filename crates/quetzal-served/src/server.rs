//! The `qzserved` daemon: connection handling, multi-tenant pools,
//! admission, backpressure, and graceful shutdown.
//!
//! # Scheduling model
//!
//! One OS thread per connection; a connection's `submit` runs
//! synchronously on that thread, streaming frames as chunks complete.
//! There is **no unbounded queue anywhere**: admission is gated by a
//! per-tenant in-flight quota, and a saturated tenant answers with a
//! typed [`Response::Busy`] frame — the client resubmits, the daemon
//! buffers nothing.
//!
//! # Tenancy
//!
//! Each tenant owns one long-lived [`MachinePool`]: machines (and the
//! pool's shared predecode registry) are recycled across that tenant's
//! jobs but never cross tenants, so a hostile tenant's quarantine churn
//! cannot poison or starve another tenant's machines. Pools are created
//! on first use, capped by [`DaemonConfig::max_tenants`].
//!
//! # Shutdown
//!
//! The workspace's zero-dependency line means no `libc`, hence no
//! signal handler: graceful shutdown is a protocol frame (and EOF, in
//! stdio mode). On `shutdown` the daemon stops admitting (`draining`
//! frames), waits for in-flight jobs to finish, answers with a final
//! `bye` frame whose stats include every tenant's quarantine tally,
//! and exits the accept loop.

use crate::job::{self, JobSpec};
use crate::protocol::{Request, Response};
use crate::stats::{ServerStats, TenantStats};
use crate::wire::{self, WireError};
use quetzal::{BatchRunner, ExecMode, MachineConfig, MachinePool};
use quetzal_trace::json::Value;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Poison-tolerant lock: a panicking connection thread must not wedge
/// the registry for everyone else.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Worker threads per job (the job's [`BatchRunner`] width).
    pub threads: usize,
    /// Items per streamed chunk (results flush after each chunk).
    pub chunk: usize,
    /// Per-tenant in-flight job quota (beyond it: `busy` frames).
    pub max_inflight: u64,
    /// Maximum distinct tenants (beyond it: `tenant-limit` errors).
    pub max_tenants: usize,
    /// Machine configuration every tenant pool builds from.
    pub machine: MachineConfig,
    /// Execution engine for every pool.
    pub exec_mode: ExecMode,
    /// Idle-connection read deadline (slow-loris guard): a TCP peer
    /// that sends nothing — or dribbles a frame byte-by-byte — for this
    /// long gets a typed `idle-timeout` error frame and its connection
    /// closed. Other connections and in-flight jobs are untouched.
    /// `None` (the default) keeps connections forever.
    pub idle_timeout: Option<Duration>,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            threads: 1,
            chunk: 16,
            max_inflight: 2,
            max_tenants: 64,
            machine: MachineConfig::default(),
            exec_mode: ExecMode::Cycle,
            idle_timeout: None,
        }
    }
}

/// One tenant: a long-lived machine pool plus its in-flight tally.
struct Tenant {
    pool: MachinePool,
    inflight: AtomicU64,
}

/// State shared by every connection thread.
struct Shared {
    config: DaemonConfig,
    stats: ServerStats,
    tenants: Mutex<BTreeMap<String, Arc<Tenant>>>,
    /// Set by the shutdown handler before draining: new submissions
    /// answer `draining`.
    shutting_down: AtomicBool,
    /// Set once the drain finished and the `bye` frame went out: the
    /// accept loop exits on its next wake-up.
    exited: AtomicBool,
    /// Jobs currently executing (drain waits for zero).
    inflight_jobs: AtomicU64,
    /// Live connections, by id. The shutdown path closes every one of
    /// these after the drain: a worker idling in a blocking read on a
    /// kept-alive client connection must not stall the daemon's exit.
    conns: Mutex<BTreeMap<u64, TcpStream>>,
    /// Connection id allocator.
    next_conn: AtomicU64,
}

/// Decrements the in-flight tallies even if the job unwinds or the
/// connection write fails mid-stream — the drain must never wait on a
/// job that already died.
struct InflightGuard<'a> {
    shared: &'a Shared,
    tenant: &'a Tenant,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.tenant.inflight.fetch_sub(1, Ordering::Relaxed);
        self.shared.inflight_jobs.fetch_sub(1, Ordering::Relaxed);
    }
}

/// How a connection ended.
enum ConnOutcome {
    /// Peer hung up (or the stream broke).
    Closed,
    /// The peer asked for shutdown; the drain already completed.
    Shutdown,
}

impl Shared {
    fn new(config: DaemonConfig) -> Shared {
        Shared {
            config,
            stats: ServerStats::default(),
            tenants: Mutex::new(BTreeMap::new()),
            shutting_down: AtomicBool::new(false),
            exited: AtomicBool::new(false),
            inflight_jobs: AtomicU64::new(0),
            conns: Mutex::new(BTreeMap::new()),
            next_conn: AtomicU64::new(0),
        }
    }

    fn tenant_stats(&self) -> Vec<TenantStats> {
        let map = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        map.iter()
            .map(|(name, t)| TenantStats {
                name: name.clone(),
                pool: t.pool.stats(),
                inflight: t.inflight.load(Ordering::Relaxed),
                max_inflight: self.config.max_inflight,
            })
            .collect()
    }

    fn stats_value(&self) -> Value {
        self.stats.snapshot(&self.tenant_stats())
    }

    /// Gets or creates a tenant's pool.
    fn tenant(&self, name: &str) -> Result<Arc<Tenant>, Response> {
        let mut map = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(t) = map.get(name) {
            return Ok(t.clone());
        }
        if map.len() >= self.config.max_tenants {
            return Err(Response::Error {
                kind: "tenant-limit",
                message: format!("tenant limit reached ({} tenants)", self.config.max_tenants),
            });
        }
        let tenant = Arc::new(Tenant {
            pool: MachinePool::new(&self.config.machine, self.config.exec_mode),
            inflight: AtomicU64::new(0),
        });
        map.insert(name.to_string(), tenant.clone());
        Ok(tenant)
    }

    fn handle_submit(
        &self,
        writer: &mut impl Write,
        tenant_name: &str,
        spec: &JobSpec,
    ) -> Result<(), WireError> {
        if self.shutting_down.load(Ordering::SeqCst) {
            self.stats.jobs_draining.fetch_add(1, Ordering::Relaxed);
            return wire::write_value(writer, &Response::Draining.to_value());
        }
        let tenant = match self.tenant(tenant_name) {
            Ok(t) => t,
            Err(refusal) => {
                self.stats.jobs_invalid.fetch_add(1, Ordering::Relaxed);
                return wire::write_value(writer, &refusal.to_value());
            }
        };
        // Bounded admission: the fetch_add is the whole "queue". Beyond
        // the quota the job is refused immediately with a typed frame —
        // the daemon never buffers work it has no machine budget for.
        let prev = tenant.inflight.fetch_add(1, Ordering::SeqCst);
        if prev >= self.config.max_inflight {
            tenant.inflight.fetch_sub(1, Ordering::SeqCst);
            self.stats.jobs_busy.fetch_add(1, Ordering::Relaxed);
            return wire::write_value(
                writer,
                &Response::Busy {
                    tenant: tenant_name.to_string(),
                    inflight: prev,
                    max: self.config.max_inflight,
                }
                .to_value(),
            );
        }
        self.inflight_jobs.fetch_add(1, Ordering::SeqCst);
        let guard = InflightGuard {
            shared: self,
            tenant: &tenant,
        };
        self.stats.jobs_accepted.fetch_add(1, Ordering::Relaxed);
        wire::write_value(
            writer,
            &Response::Accepted {
                tenant: tenant_name.to_string(),
                items: spec.items() as u64,
            }
            .to_value(),
        )?;
        let runner = BatchRunner::new(self.config.threads).with_exec_mode(self.config.exec_mode);
        let start = Instant::now();
        let mut write_err: Option<WireError> = None;
        let summary = job::execute(
            &runner,
            &tenant.pool,
            spec,
            self.config.chunk,
            &mut |frame| {
                // First write failure wins; the job still runs to completion
                // so its counters (and quarantines) stay accurate.
                if write_err.is_none() {
                    if let Err(e) = wire::write_value(writer, &frame.to_value()) {
                        write_err = Some(e);
                    }
                }
            },
        );
        self.stats.absorb_job(&summary, start.elapsed());
        drop(guard);
        match write_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Serves one connection until EOF, a fatal framing error, or a
    /// shutdown request. Generic over the stream so the TCP daemon,
    /// stdio mode, and in-memory tests share the exact same logic.
    fn serve_connection(&self, reader: &mut impl Read, writer: &mut impl Write) -> ConnOutcome {
        loop {
            let value = match wire::read_value(reader) {
                Ok(None) => return ConnOutcome::Closed,
                Ok(Some(v)) => v,
                Err(e) if e.is_timeout() => {
                    // Slow-loris guard: the peer idled past the read
                    // deadline (or dribbled a frame too slowly). Tell
                    // it why and hang up; nothing else on the daemon is
                    // affected — the deadline only ever fires on a
                    // connection thread that is waiting for input.
                    self.stats.idle_timeouts.fetch_add(1, Ordering::Relaxed);
                    let _ = wire::write_value(
                        writer,
                        &Response::Error {
                            kind: "idle-timeout",
                            message: "connection idle past the read deadline".to_string(),
                        }
                        .to_value(),
                    );
                    return ConnOutcome::Closed;
                }
                Err(e) => {
                    self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    // Best effort: a peer that truncated a frame is
                    // usually gone, but tell it what happened if the
                    // write half still works.
                    let _ = wire::write_value(
                        writer,
                        &Response::Error {
                            kind: "bad-frame",
                            message: format!("{} ({})", e, e.kind()),
                        }
                        .to_value(),
                    );
                    if e.is_fatal() {
                        return ConnOutcome::Closed;
                    }
                    continue;
                }
            };
            let request = match Request::from_value(&value) {
                Ok(r) => r,
                Err(message) => {
                    self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    if wire::write_value(
                        writer,
                        &Response::Error {
                            kind: "bad-request",
                            message,
                        }
                        .to_value(),
                    )
                    .is_err()
                    {
                        return ConnOutcome::Closed;
                    }
                    continue;
                }
            };
            let io_result = match request {
                Request::Ping => wire::write_value(writer, &Response::Pong.to_value()),
                Request::Stats => {
                    wire::write_value(writer, &Response::Stats(self.stats_value()).to_value())
                }
                Request::Submit { tenant, job } => self.handle_submit(writer, &tenant, &job),
                Request::Shutdown => {
                    self.shutting_down.store(true, Ordering::SeqCst);
                    // Drain: every in-flight job decrements through its
                    // guard, unwind included, so this terminates.
                    while self.inflight_jobs.load(Ordering::SeqCst) > 0 {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    let _ =
                        wire::write_value(writer, &Response::Bye(self.stats_value()).to_value());
                    self.exited.store(true, Ordering::SeqCst);
                    return ConnOutcome::Shutdown;
                }
            };
            if io_result.is_err() {
                return ConnOutcome::Closed;
            }
        }
    }
}

/// The `qzserved` daemon over a TCP listener.
pub struct Daemon {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Daemon {
    /// Binds the daemon (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn bind(addr: &str, config: DaemonConfig) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(addr)?;
        Ok(Daemon {
            listener,
            shared: Arc::new(Shared::new(config)),
        })
    }

    /// The bound address (the actual port when bound ephemeral).
    ///
    /// # Errors
    ///
    /// Returns the socket error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept loop: serves until a client's `shutdown` frame drains the
    /// daemon. Every connection gets its own thread; all are joined
    /// before returning, so on exit no job is still running.
    ///
    /// # Errors
    ///
    /// Returns transport errors from the listener itself.
    pub fn run(self) -> std::io::Result<()> {
        let addr = self.listener.local_addr()?;
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            let (stream, _) = self.listener.accept()?;
            if self.shared.exited.load(Ordering::SeqCst) {
                drop(stream);
                break;
            }
            let id = self.shared.next_conn.fetch_add(1, Ordering::Relaxed);
            if let Ok(clone) = stream.try_clone() {
                lock(&self.shared.conns).insert(id, clone);
            }
            let shared = self.shared.clone();
            workers.push(std::thread::spawn(move || {
                serve_tcp(&shared, stream, addr);
                lock(&shared.conns).remove(&id);
            }));
            workers.retain(|w| !w.is_finished());
        }
        // The drain only waits for in-flight *jobs*; a client idling on
        // a kept-alive connection would park its worker in a blocking
        // read forever. Hang up on all of them so every join returns.
        for (_, conn) in lock(&self.shared.conns).iter() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }

    /// Serves exactly one protocol session over stdin/stdout (`--stdio`
    /// mode): same frames, no socket. EOF on stdin is the shutdown
    /// signal.
    pub fn serve_stdio(config: DaemonConfig) {
        let shared = Shared::new(config);
        let mut stdin = std::io::stdin().lock();
        let mut stdout = std::io::stdout().lock();
        let _ = shared.serve_connection(&mut stdin, &mut stdout);
    }
}

fn serve_tcp(shared: &Shared, stream: TcpStream, listen_addr: SocketAddr) {
    // The deadline only bounds reads: response streaming on the write
    // half (a long submit's frames) is never cut short by it.
    let _ = stream.set_read_timeout(shared.config.idle_timeout);
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = stream;
    if let ConnOutcome::Shutdown = shared.serve_connection(&mut reader, &mut writer) {
        // The accept loop is blocked in accept(); poke it awake so it
        // can observe `exited` and wind down.
        let _ = TcpStream::connect(listen_addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared(config: DaemonConfig) -> Shared {
        Shared::new(config)
    }

    /// Runs raw request bytes through an in-memory connection and
    /// parses the response frames.
    fn roundtrip(shared: &Shared, input: &[u8]) -> Vec<Response> {
        let mut reader = input;
        let mut out = Vec::new();
        let _ = shared.serve_connection(&mut reader, &mut out);
        let mut frames = Vec::new();
        let mut r = out.as_slice();
        while let Ok(Some(v)) = wire::read_value(&mut r) {
            frames.push(Response::from_value(&v).expect("daemon emits valid frames"));
        }
        frames
    }

    fn frame_bytes(requests: &[Request]) -> Vec<u8> {
        let mut buf = Vec::new();
        for r in requests {
            wire::write_value(&mut buf, &r.to_value()).unwrap();
        }
        buf
    }

    #[test]
    fn ping_stats_and_bad_requests() {
        let s = shared(DaemonConfig::default());
        let mut input = frame_bytes(&[Request::Ping]);
        wire::write_frame(&mut input, br#"{"type":"warp"}"#).unwrap();
        wire::write_frame(&mut input, b"garbage{{").unwrap();
        input.extend_from_slice(&frame_bytes(&[Request::Stats]));
        let frames = roundtrip(&s, &input);
        assert!(matches!(frames[0], Response::Pong));
        assert!(matches!(
            frames[1],
            Response::Error {
                kind: "bad-request",
                ..
            }
        ));
        assert!(matches!(
            frames[2],
            Response::Error {
                kind: "bad-frame",
                ..
            }
        ));
        let Response::Stats(stats) = &frames[3] else {
            panic!("expected stats, got {:?}", frames[3]);
        };
        assert_eq!(stats.get("protocol_errors").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn draining_daemon_refuses_submissions() {
        let s = shared(DaemonConfig::default());
        s.shutting_down.store(true, Ordering::SeqCst);
        let input = frame_bytes(&[Request::Submit {
            tenant: "t".to_string(),
            job: JobSpec::Fault {
                seed: 1,
                cases: vec![0],
            },
        }]);
        let frames = roundtrip(&s, &input);
        assert_eq!(frames, vec![Response::Draining]);
        assert_eq!(s.stats.jobs_draining.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn tenant_quota_answers_busy() {
        let s = shared(DaemonConfig {
            max_inflight: 0, // every submission is over quota
            ..DaemonConfig::default()
        });
        let input = frame_bytes(&[Request::Submit {
            tenant: "t".to_string(),
            job: JobSpec::Fault {
                seed: 1,
                cases: vec![0],
            },
        }]);
        let frames = roundtrip(&s, &input);
        assert_eq!(
            frames,
            vec![Response::Busy {
                tenant: "t".to_string(),
                inflight: 0,
                max: 0,
            }]
        );
    }

    #[test]
    fn tenant_limit_is_enforced() {
        let s = shared(DaemonConfig {
            max_tenants: 1,
            ..DaemonConfig::default()
        });
        assert!(s.tenant("first").is_ok());
        let Err(refusal) = s.tenant("second") else {
            panic!("second tenant should be refused")
        };
        assert!(matches!(
            refusal,
            Response::Error {
                kind: "tenant-limit",
                ..
            }
        ));
        assert!(s.tenant("first").is_ok(), "existing tenants still resolve");
    }

    /// A reader that yields its framed bytes, then reports a read
    /// timeout — like a TCP socket whose read deadline expired.
    struct TimesOut<'a>(&'a [u8]);

    impl Read for TimesOut<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.0.is_empty() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "read deadline elapsed",
                ));
            }
            let n = self.0.len().min(buf.len());
            buf[..n].copy_from_slice(&self.0[..n]);
            self.0 = &self.0[n..];
            Ok(n)
        }
    }

    #[test]
    fn idle_read_deadline_answers_typed_error_and_closes() {
        let s = shared(DaemonConfig::default());
        let input = frame_bytes(&[Request::Ping]);
        let mut reader = TimesOut(&input);
        let mut out = Vec::new();
        let outcome = s.serve_connection(&mut reader, &mut out);
        assert!(matches!(outcome, ConnOutcome::Closed));
        let mut frames = Vec::new();
        let mut r = out.as_slice();
        while let Ok(Some(v)) = wire::read_value(&mut r) {
            frames.push(Response::from_value(&v).expect("daemon emits valid frames"));
        }
        // The ping before the stall was served normally; the stall gets
        // a typed idle-timeout error, not a generic bad-frame.
        assert!(matches!(frames[0], Response::Pong));
        assert!(matches!(
            frames[1],
            Response::Error {
                kind: "idle-timeout",
                ..
            }
        ));
        assert_eq!(s.stats.idle_timeouts.load(Ordering::Relaxed), 1);
        assert_eq!(
            s.stats.protocol_errors.load(Ordering::Relaxed),
            0,
            "a deadline expiry is not a protocol error"
        );
    }
}
