//! Framed client for the `qzserved` protocol (used by `qzclient`, the
//! loopback e2e test, and the CI daemon smoke).

use crate::job::JobSpec;
use crate::protocol::{Request, Response};
use crate::wire::{self, WireError};
use quetzal_trace::json::Value;
use std::io::{Read, Write};
use std::net::TcpStream;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Framing / transport failure.
    Wire(WireError),
    /// The daemon broke protocol (unknown frame, early hangup).
    Protocol(String),
    /// The daemon answered with a typed `error` frame.
    Refused {
        /// Machine-readable kind from the error frame.
        kind: &'static str,
        /// Human-readable detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Refused { kind, message } => write!(f, "refused ({kind}): {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Wire(e)
    }
}

/// What a `submit` came back with.
#[derive(Debug)]
pub enum SubmitOutcome {
    /// Admitted: the full frame stream (`accepted` … `done`).
    Report(Vec<Response>),
    /// Refused on tenant quota — resubmit later.
    Busy {
        /// Jobs in flight for the tenant at refusal time.
        inflight: u64,
        /// The tenant's quota.
        max: u64,
    },
    /// Refused because the daemon is draining for shutdown.
    Draining,
}

/// A framed protocol client over any bidirectional stream.
#[derive(Debug)]
pub struct Client<S> {
    stream: S,
}

impl Client<TcpStream> {
    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Returns the connection error.
    pub fn connect(addr: &str) -> Result<Client<TcpStream>, ClientError> {
        let stream = TcpStream::connect(addr).map_err(WireError::Io)?;
        Ok(Client { stream })
    }
}

impl<S: Read + Write> Client<S> {
    /// Wraps an existing stream.
    pub fn new(stream: S) -> Client<S> {
        Client { stream }
    }

    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        wire::write_value(&mut self.stream, &request.to_value())?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, ClientError> {
        let value = wire::read_value(&mut self.stream)?
            .ok_or_else(|| ClientError::Protocol("daemon hung up mid-exchange".to_string()))?;
        Response::from_value(&value).map_err(ClientError::Protocol)
    }

    /// Liveness check.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on transport or protocol failure.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Ping)?;
        match self.recv()? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected pong, got {other:?}"
            ))),
        }
    }

    /// Fetches the daemon's stats object.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on transport or protocol failure.
    pub fn stats(&mut self) -> Result<Value, ClientError> {
        self.send(&Request::Stats)?;
        match self.recv()? {
            Response::Stats(v) => Ok(v),
            other => Err(ClientError::Protocol(format!(
                "expected stats, got {other:?}"
            ))),
        }
    }

    /// Asks the daemon to drain and exit; returns the final stats from
    /// its `bye` frame.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on transport or protocol failure.
    pub fn shutdown(&mut self) -> Result<Value, ClientError> {
        self.send(&Request::Shutdown)?;
        match self.recv()? {
            Response::Bye(v) => Ok(v),
            other => Err(ClientError::Protocol(format!(
                "expected bye, got {other:?}"
            ))),
        }
    }

    /// Submits a job and collects the streamed report.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Refused`] for typed admission errors and
    /// [`ClientError`] transport/protocol variants otherwise. `Busy`
    /// and `Draining` are *outcomes*, not errors — they are the
    /// protocol's backpressure working as designed.
    pub fn submit(&mut self, tenant: &str, job: &JobSpec) -> Result<SubmitOutcome, ClientError> {
        self.send(&Request::Submit {
            tenant: tenant.to_string(),
            job: job.clone(),
        })?;
        let mut frames = Vec::new();
        match self.recv()? {
            Response::Busy { inflight, max, .. } => {
                return Ok(SubmitOutcome::Busy { inflight, max })
            }
            Response::Draining => return Ok(SubmitOutcome::Draining),
            Response::Error { kind, message } => {
                return Err(ClientError::Refused { kind, message });
            }
            accepted @ Response::Accepted { .. } => frames.push(accepted),
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected accepted, got {other:?}"
                )));
            }
        }
        loop {
            let frame = self.recv()?;
            let is_done = matches!(frame, Response::Done(_));
            frames.push(frame);
            if is_done {
                return Ok(SubmitOutcome::Report(frames));
            }
        }
    }
}
