//! Framed client for the `qzserved` protocol (used by `qzclient`, the
//! loopback e2e test, and the CI daemon smoke).

use crate::job::JobSpec;
use crate::protocol::{Request, Response};
use crate::wire::{self, WireError};
use quetzal_genomics::rng::SplitMix64;
use quetzal_trace::json::Value;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Framing / transport failure.
    Wire(WireError),
    /// The daemon broke protocol (unknown frame, early hangup).
    Protocol(String),
    /// The daemon answered with a typed `error` frame.
    Refused {
        /// Machine-readable kind from the error frame.
        kind: &'static str,
        /// Human-readable detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Refused { kind, message } => write!(f, "refused ({kind}): {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Wire(e)
    }
}

/// What a `submit` came back with.
#[derive(Debug)]
pub enum SubmitOutcome {
    /// Admitted: the full frame stream (`accepted` … `done`).
    Report(Vec<Response>),
    /// Refused on tenant quota — resubmit later.
    Busy {
        /// Jobs in flight for the tenant at refusal time.
        inflight: u64,
        /// The tenant's quota.
        max: u64,
    },
    /// Refused because the daemon is draining for shutdown.
    Draining,
}

/// Backoff schedule for resubmitting after a typed `busy` frame.
///
/// The delay before attempt `k` (1-based) is `base * 2^(k-1)` capped at
/// `cap`, plus up to 50% seeded jitter so a herd of refused clients
/// does not resubmit in lockstep. The jitter stream is [`SplitMix64`],
/// so a given seed always produces the same schedule — tests can
/// assert on it.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Resubmit at most this many times after the first refusal.
    pub retries: u32,
    /// Delay before the first resubmit (doubles each refusal).
    pub base: Duration,
    /// Upper bound on any single delay, pre-jitter.
    pub cap: Duration,
    /// Give up once the whole submit (including waits) has taken this
    /// long, even with retries left.
    pub deadline: Option<Duration>,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            retries: 5,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(2),
            deadline: None,
            seed: 0x5eed_1e55,
        }
    }
}

impl RetryPolicy {
    /// The jittered delay before resubmit attempt `attempt` (1-based),
    /// drawing jitter from `rng`.
    fn delay(&self, attempt: u32, rng: &mut SplitMix64) -> Duration {
        let exp = attempt.saturating_sub(1).min(32);
        let scaled = self
            .base
            .checked_mul(1u32 << exp.min(31))
            .unwrap_or(self.cap);
        let capped = scaled.min(self.cap);
        // Up to +50% jitter in 1/1024 steps — deterministic per seed.
        let jitter_per_mille = (rng.next_u64() % 512) as u32;
        capped + capped.mul_f64(f64::from(jitter_per_mille) / 1024.0)
    }
}

/// A framed protocol client over any bidirectional stream.
#[derive(Debug)]
pub struct Client<S> {
    stream: S,
}

impl Client<TcpStream> {
    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Returns the connection error.
    pub fn connect(addr: &str) -> Result<Client<TcpStream>, ClientError> {
        let stream = TcpStream::connect(addr).map_err(WireError::Io)?;
        Ok(Client { stream })
    }
}

impl<S: Read + Write> Client<S> {
    /// Wraps an existing stream.
    pub fn new(stream: S) -> Client<S> {
        Client { stream }
    }

    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        wire::write_value(&mut self.stream, &request.to_value())?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, ClientError> {
        let value = wire::read_value(&mut self.stream)?
            .ok_or_else(|| ClientError::Protocol("daemon hung up mid-exchange".to_string()))?;
        Response::from_value(&value).map_err(ClientError::Protocol)
    }

    /// Liveness check.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on transport or protocol failure.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Ping)?;
        match self.recv()? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected pong, got {other:?}"
            ))),
        }
    }

    /// Fetches the daemon's stats object.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on transport or protocol failure.
    pub fn stats(&mut self) -> Result<Value, ClientError> {
        self.send(&Request::Stats)?;
        match self.recv()? {
            Response::Stats(v) => Ok(v),
            other => Err(ClientError::Protocol(format!(
                "expected stats, got {other:?}"
            ))),
        }
    }

    /// Asks the daemon to drain and exit; returns the final stats from
    /// its `bye` frame.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on transport or protocol failure.
    pub fn shutdown(&mut self) -> Result<Value, ClientError> {
        self.send(&Request::Shutdown)?;
        match self.recv()? {
            Response::Bye(v) => Ok(v),
            other => Err(ClientError::Protocol(format!(
                "expected bye, got {other:?}"
            ))),
        }
    }

    /// Submits a job and collects the streamed report.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Refused`] for typed admission errors and
    /// [`ClientError`] transport/protocol variants otherwise. `Busy`
    /// and `Draining` are *outcomes*, not errors — they are the
    /// protocol's backpressure working as designed.
    pub fn submit(&mut self, tenant: &str, job: &JobSpec) -> Result<SubmitOutcome, ClientError> {
        self.send(&Request::Submit {
            tenant: tenant.to_string(),
            job: job.clone(),
        })?;
        let mut frames = Vec::new();
        match self.recv()? {
            Response::Busy { inflight, max, .. } => {
                return Ok(SubmitOutcome::Busy { inflight, max })
            }
            Response::Draining => return Ok(SubmitOutcome::Draining),
            Response::Error { kind, message } => {
                return Err(ClientError::Refused { kind, message });
            }
            accepted @ Response::Accepted { .. } => frames.push(accepted),
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected accepted, got {other:?}"
                )));
            }
        }
        loop {
            let frame = self.recv()?;
            let is_done = matches!(frame, Response::Done(_));
            frames.push(frame);
            if is_done {
                return Ok(SubmitOutcome::Report(frames));
            }
        }
    }

    /// Submits a job, resubmitting on `busy` frames with jittered
    /// exponential backoff per `policy`.
    ///
    /// `on_busy` is called before each wait with (attempt, inflight,
    /// max, delay) so callers can log the backpressure. Returns the
    /// last refusal as a plain [`SubmitOutcome::Busy`] once retries or
    /// the deadline are exhausted; `Draining` is never retried — a
    /// daemon on its way down will not come back.
    ///
    /// # Errors
    ///
    /// Same as [`Client::submit`].
    pub fn submit_with_retry(
        &mut self,
        tenant: &str,
        job: &JobSpec,
        policy: &RetryPolicy,
        mut on_busy: impl FnMut(u32, u64, u64, Duration),
    ) -> Result<SubmitOutcome, ClientError> {
        let start = Instant::now();
        let mut rng = SplitMix64::new(policy.seed);
        let mut attempt = 0u32;
        loop {
            match self.submit(tenant, job)? {
                SubmitOutcome::Busy { inflight, max } => {
                    attempt += 1;
                    if attempt > policy.retries {
                        return Ok(SubmitOutcome::Busy { inflight, max });
                    }
                    let delay = policy.delay(attempt, &mut rng);
                    if let Some(deadline) = policy.deadline {
                        if start.elapsed() + delay > deadline {
                            return Ok(SubmitOutcome::Busy { inflight, max });
                        }
                    }
                    on_busy(attempt, inflight, max, delay);
                    std::thread::sleep(delay);
                }
                other => return Ok(other),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_seeded_capped_and_monotone_pre_jitter() {
        let policy = RetryPolicy {
            retries: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
            deadline: None,
            seed: 42,
        };
        let mut a = SplitMix64::new(policy.seed);
        let mut b = SplitMix64::new(policy.seed);
        for attempt in 1..=8 {
            // Same seed, same schedule — deterministic jitter.
            assert_eq!(policy.delay(attempt, &mut a), policy.delay(attempt, &mut b));
        }
        let mut rng = SplitMix64::new(policy.seed);
        for attempt in 1..=8u32 {
            let d = policy.delay(attempt, &mut rng);
            let pre = Duration::from_millis(10)
                .checked_mul(1 << (attempt - 1))
                .unwrap()
                .min(Duration::from_millis(200));
            // Jitter adds at most 50%.
            assert!(d >= pre, "attempt {attempt}: {d:?} < {pre:?}");
            assert!(d <= pre.mul_f64(1.5), "attempt {attempt}: {d:?} too big");
        }
        // Different seeds disagree somewhere in the schedule.
        let other = RetryPolicy {
            seed: 43,
            ..policy.clone()
        };
        let mut x = SplitMix64::new(policy.seed);
        let mut y = SplitMix64::new(other.seed);
        let differs = (1..=8).any(|k| policy.delay(k, &mut x) != other.delay(k, &mut y));
        assert!(differs);
    }
}
