//! # `qzserved` — alignment as a service
//!
//! A long-lived batch-alignment daemon over the QUETZAL simulator
//! stack, holding the workspace's zero-external-dependency line:
//! std-only TCP, the in-tree JSON codec from `quetzal-trace`, and a
//! length-prefixed framed protocol (see [`wire`], DESIGN.md §11).
//!
//! The daemon assembles capabilities the library layers already pin:
//!
//! * **Multi-tenant machine pools** — one long-lived
//!   [`MachinePool`](quetzal::MachinePool) per tenant (checkout /
//!   reset-≡-fresh / quarantine semantics live in `quetzal::pool`,
//!   shared verbatim with the one-shot `BatchRunner` CLI paths).
//! * **Verifier-gated admission** — fault jobs replay hostile mutant
//!   programs; `quetzal-verify` runs before any machine checkout and
//!   provably-fatal programs are rejected with typed
//!   `FailureCause::Rejected` frames.
//! * **Bounded everything** — per-tenant in-flight quotas answer
//!   `busy` frames instead of queueing; the frame length prefix is
//!   hard-bounded; malformed frames get typed errors, never panics.
//! * **Deterministic streaming** — per-item results stream in item
//!   order through the same [`job::execute`] core the offline path
//!   uses, so a served batch is byte-identical to an offline
//!   `BatchRunner` run at any worker-thread count.
//! * **Observability** — a `/stats` frame with job/item tallies,
//!   per-tenant pool occupancy (quarantine included) and sim-MIPS.
//!
//! Binaries: `qzserved` (the daemon, TCP or stdio) and `qzclient`
//! (submit / fault / stats / shutdown, plus `--offline` to run the
//! identical job without a daemon).

#![warn(missing_docs)]

pub mod client;
pub mod job;
pub mod protocol;
pub mod server;
pub mod stats;
pub mod wire;

pub use client::{Client, ClientError, RetryPolicy, SubmitOutcome};
pub use job::{Budgets, JobSpec, JobSummary};
pub use protocol::{render_report, Request, Response};
pub use server::{Daemon, DaemonConfig};
pub use stats::{ServerStats, TenantStats};
pub use wire::{WireError, MAX_FRAME};
