//! `qzserved` — the alignment-as-a-service daemon.
//!
//! ```text
//! qzserved [--listen ADDR] [--stdio] [--threads N] [--chunk N]
//!          [--max-inflight N] [--max-tenants N] [--functional]
//!          [--idle-timeout-ms N]
//! ```
//!
//! TCP mode (default) binds `--listen` (use port 0 for an ephemeral
//! port), prints `qzserved listening on <addr>` on stdout, and serves
//! until a client sends a `shutdown` frame. `--stdio` serves one
//! framed session over stdin/stdout instead (EOF ends it).

use quetzal::ExecMode;
use quetzal_served::{Daemon, DaemonConfig};

fn usage() -> ! {
    eprintln!(
        "usage: qzserved [--listen ADDR] [--stdio] [--threads N] [--chunk N] \
         [--max-inflight N] [--max-tenants N] [--functional] [--idle-timeout-ms N]"
    );
    std::process::exit(2);
}

fn parse_num<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("qzserved: {flag} needs a numeric argument");
        std::process::exit(2);
    })
}

fn main() {
    let mut config = DaemonConfig::default();
    let mut listen = "127.0.0.1:0".to_string();
    let mut stdio = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = args.next().unwrap_or_else(|| usage()),
            "--stdio" => stdio = true,
            "--threads" => config.threads = parse_num(&mut args, "--threads"),
            "--chunk" => config.chunk = parse_num(&mut args, "--chunk"),
            "--max-inflight" => config.max_inflight = parse_num(&mut args, "--max-inflight"),
            "--max-tenants" => config.max_tenants = parse_num(&mut args, "--max-tenants"),
            "--functional" => config.exec_mode = ExecMode::Functional,
            "--idle-timeout-ms" => {
                let ms: u64 = parse_num(&mut args, "--idle-timeout-ms");
                config.idle_timeout = Some(std::time::Duration::from_millis(ms.max(1)));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("qzserved: unknown argument '{other}'");
                usage();
            }
        }
    }
    if config.threads == 0 || config.chunk == 0 {
        eprintln!("qzserved: --threads and --chunk must be positive");
        std::process::exit(2);
    }
    if stdio {
        Daemon::serve_stdio(config);
        return;
    }
    let daemon = match Daemon::bind(&listen, config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("qzserved: cannot bind {listen}: {e}");
            std::process::exit(1);
        }
    };
    match daemon.local_addr() {
        Ok(addr) => {
            // The smoke scripts scrape this line for the ephemeral port.
            println!("qzserved listening on {addr}");
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("qzserved: cannot read bound address: {e}");
            std::process::exit(1);
        }
    }
    if let Err(e) = daemon.run() {
        eprintln!("qzserved: accept loop failed: {e}");
        std::process::exit(1);
    }
}
