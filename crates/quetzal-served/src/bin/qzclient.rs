//! `qzclient` — manual smoke client for `qzserved`.
//!
//! ```text
//! qzclient submit  --addr HOST:PORT [--tenant NAME] [--algo A] [--tier T]
//!                  [--dataset D] [--pairs N] [--offline]
//! qzclient fault   --addr HOST:PORT [--tenant NAME] [--seed S] [--cases N]
//!                  [--offline]
//! qzclient ping    --addr HOST:PORT
//! qzclient stats   --addr HOST:PORT
//! qzclient shutdown --addr HOST:PORT
//! ```
//!
//! `submit` stages a Fig. 3 workload slice (a Table II dataset's
//! generated pairs) and prints the daemon's streamed report on stdout —
//! one compact JSON document per item plus the final `done` line.
//! `--offline` runs the identical job through the in-process
//! [`BatchRunner`] instead of a daemon; the CI smoke byte-compares the
//! two outputs.

use quetzal::{BatchRunner, MachineConfig, MachinePool};
use quetzal_algos::Tier;
use quetzal_bench::workloads::{Algo, Workload, SEED};
use quetzal_genomics::DatasetSpec;
use quetzal_served::{job, render_report, Budgets, Client, JobSpec, SubmitOutcome};

fn usage() -> ! {
    eprintln!(
        "usage: qzclient <submit|fault|ping|stats|shutdown> --addr HOST:PORT\n\
         \x20 submit: [--tenant NAME] [--algo wfa|biwfa|ss|sw|nw] \
         [--tier base|vec|quetzal|quetzal+c] [--dataset NAME] [--pairs N] [--offline]\n\
         \x20 fault:  [--tenant NAME] [--seed S] [--cases N] [--offline]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("qzclient: {msg}");
    std::process::exit(1);
}

fn dataset_by_name(name: &str) -> DatasetSpec {
    match name {
        "100bp_1" => DatasetSpec::d100(),
        "250bp_1" => DatasetSpec::d250(),
        "10Kbp" => DatasetSpec::d10k(),
        "30Kbp" => DatasetSpec::d30k(),
        "10Kbp_hifi" => DatasetSpec::d10k_hifi(),
        other => fail(&format!(
            "unknown dataset '{other}' (100bp_1|250bp_1|10Kbp|30Kbp|10Kbp_hifi)"
        )),
    }
}

fn parse_algo(code: &str) -> Algo {
    match code {
        "wfa" => Algo::Wfa,
        "biwfa" => Algo::BiWfa,
        "ss" => Algo::Ss,
        "sw" => Algo::Sw,
        "nw" => Algo::Nw,
        other => fail(&format!("unknown algo '{other}'")),
    }
}

fn parse_tier(code: &str) -> Tier {
    match code {
        "base" => Tier::Base,
        "vec" => Tier::Vec,
        "quetzal" => Tier::Quetzal,
        "quetzal+c" => Tier::QuetzalC,
        other => fail(&format!("unknown tier '{other}'")),
    }
}

struct Options {
    addr: Option<String>,
    tenant: String,
    algo: Algo,
    tier: Tier,
    dataset: String,
    pairs: usize,
    seed: u64,
    cases: u64,
    offline: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            addr: None,
            tenant: "default".to_string(),
            algo: Algo::Ss,
            tier: Tier::QuetzalC,
            dataset: "100bp_1".to_string(),
            pairs: 4,
            seed: 0xF4417,
            cases: 16,
            offline: false,
        }
    }
}

fn next_arg(iter: &mut impl Iterator<Item = String>, flag: &str) -> String {
    iter.next()
        .unwrap_or_else(|| fail(&format!("{flag} needs an argument")))
}

fn parse_options(mut args: impl Iterator<Item = String>) -> Options {
    let mut opts = Options::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => opts.addr = Some(next_arg(&mut args, "--addr")),
            "--tenant" => opts.tenant = next_arg(&mut args, "--tenant"),
            "--algo" => opts.algo = parse_algo(&next_arg(&mut args, "--algo")),
            "--tier" => opts.tier = parse_tier(&next_arg(&mut args, "--tier")),
            "--dataset" => opts.dataset = next_arg(&mut args, "--dataset"),
            "--pairs" => {
                opts.pairs = next_arg(&mut args, "--pairs")
                    .parse()
                    .unwrap_or_else(|_| fail("--pairs needs a number"))
            }
            "--seed" => {
                let v = next_arg(&mut args, "--seed");
                opts.seed = v
                    .strip_prefix("0x")
                    .map(|h| u64::from_str_radix(h, 16).ok())
                    .unwrap_or_else(|| v.parse().ok())
                    .unwrap_or_else(|| fail("--seed needs a number"));
            }
            "--cases" => {
                opts.cases = next_arg(&mut args, "--cases")
                    .parse()
                    .unwrap_or_else(|_| fail("--cases needs a number"))
            }
            "--offline" => opts.offline = true,
            "--help" | "-h" => usage(),
            other => fail(&format!("unknown argument '{other}'")),
        }
    }
    opts
}

/// Stages the Fig. 3 workload slice: `n` generated pairs of the chosen
/// Table II dataset, with the experiment harness's own SS threshold.
fn stage_align_job(opts: &Options) -> JobSpec {
    let spec = dataset_by_name(&opts.dataset);
    let wl = Workload {
        pairs: spec.generate_n(SEED, opts.pairs.max(1)),
        spec,
    };
    JobSpec::Align {
        algo: opts.algo,
        tier: opts.tier,
        alphabet: wl.spec.alphabet,
        ss_threshold: wl.ss_threshold(),
        budgets: Budgets::default(),
        pairs: wl.pairs,
    }
}

fn run_offline(spec: &JobSpec) -> String {
    let runner = BatchRunner::from_env();
    let config = MachineConfig::default();
    let pool = MachinePool::new(&config, runner.exec_mode());
    let mut frames = Vec::new();
    job::execute(&runner, &pool, spec, 16, &mut |f| frames.push(f));
    render_report(&frames)
}

fn connect(opts: &Options) -> Client<std::net::TcpStream> {
    let addr = opts
        .addr
        .as_deref()
        .unwrap_or_else(|| fail("--addr HOST:PORT is required (or use --offline)"));
    Client::connect(addr).unwrap_or_else(|e| fail(&format!("cannot connect to {addr}: {e}")))
}

fn run_submit(opts: &Options, spec: &JobSpec) {
    if opts.offline {
        print!("{}", run_offline(spec));
        return;
    }
    let mut client = connect(opts);
    match client.submit(&opts.tenant, spec) {
        Ok(SubmitOutcome::Report(frames)) => {
            print!("{}", render_report(&frames));
            if let Some(quetzal_served::Response::Done(s)) = frames.last() {
                eprintln!(
                    "qzclient: {} item(s): {} ok, {} failed, {} rejected, {} recovered",
                    s.items, s.ok, s.failed, s.rejected, s.recovered
                );
            }
        }
        Ok(SubmitOutcome::Busy { inflight, max }) => {
            fail(&format!("tenant busy ({inflight}/{max} in flight)"))
        }
        Ok(SubmitOutcome::Draining) => fail("daemon is draining for shutdown"),
        Err(e) => fail(&e.to_string()),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else { usage() };
    let opts = parse_options(args);
    match command.as_str() {
        "submit" => {
            let spec = stage_align_job(&opts);
            run_submit(&opts, &spec);
        }
        "fault" => {
            let spec = JobSpec::Fault {
                seed: opts.seed,
                cases: (0..opts.cases.max(1)).collect(),
            };
            run_submit(&opts, &spec);
        }
        "ping" => {
            let mut client = connect(&opts);
            client.ping().unwrap_or_else(|e| fail(&e.to_string()));
            println!("pong");
        }
        "stats" => {
            let mut client = connect(&opts);
            let stats = client.stats().unwrap_or_else(|e| fail(&e.to_string()));
            println!("{}", stats.dump());
        }
        "shutdown" => {
            let mut client = connect(&opts);
            let stats = client.shutdown().unwrap_or_else(|e| fail(&e.to_string()));
            println!("{}", stats.dump());
        }
        _ => usage(),
    }
}
