//! `qzclient` — manual smoke client for `qzserved`.
//!
//! ```text
//! qzclient submit  --addr HOST:PORT [--tenant NAME] [--algo A] [--tier T]
//!                  [--dataset D] [--pairs N] [--offline]
//! qzclient ingest  --addr HOST:PORT --input FILE --ckpt DIR [--output FILE]
//!                  [--tenant NAME] [--algo A] [--tier T] [--alphabet X]
//!                  [--threshold N] [--shard N] [--shard-deadline-ms N]
//!                  [--shard-insts N] [--retry-quarantined] [--offline]
//! qzclient fault   --addr HOST:PORT [--tenant NAME] [--seed S] [--cases N]
//!                  [--offline]
//! qzclient ping    --addr HOST:PORT
//! qzclient stats   --addr HOST:PORT
//! qzclient shutdown --addr HOST:PORT
//! ```
//!
//! `submit` stages a Fig. 3 workload slice (a Table II dataset's
//! generated pairs) and prints the daemon's streamed report on stdout —
//! one compact JSON document per item plus the final `done` line.
//! `ingest` points the daemon at a *daemon-local* pair file and
//! checkpoint directory (stage one with `qzingest stage`): the job
//! streams the file in bounded shards, committing a durable manifest
//! per shard, so resubmitting after a daemon crash resumes instead of
//! recomputing. `--offline` runs the identical job through the
//! in-process [`BatchRunner`] instead of a daemon; the CI smoke
//! byte-compares the two outputs.
//!
//! A typed `busy` refusal (tenant quota) is retried up to `--retries`
//! times with jittered exponential backoff, bounded by `--deadline`
//! milliseconds overall; `--retries 0` fails fast instead.

use quetzal::{BatchRunner, MachineConfig, MachinePool};
use quetzal_algos::Tier;
use quetzal_bench::workloads::{Algo, Workload, SEED};
use quetzal_genomics::{Alphabet, DatasetSpec};
use quetzal_served::{job, render_report, Budgets, Client, JobSpec, RetryPolicy, SubmitOutcome};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: qzclient <submit|ingest|fault|ping|stats|shutdown> --addr HOST:PORT\n\
         \x20 submit: [--tenant NAME] [--algo wfa|biwfa|ss|sw|nw] \
         [--tier base|vec|quetzal|quetzal+c] [--dataset NAME] [--pairs N] [--offline]\n\
         \x20 ingest: --input FILE --ckpt DIR [--output FILE] [--tenant NAME] [--algo A]\n\
         \x20         [--tier T] [--alphabet dna|rna|protein] [--threshold N] [--shard N]\n\
         \x20         [--shard-deadline-ms N] [--shard-insts N] [--retry-quarantined] [--offline]\n\
         \x20 fault:  [--tenant NAME] [--seed S] [--cases N] [--offline]\n\
         \x20 common: [--retries N] [--deadline MS]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("qzclient: {msg}");
    std::process::exit(1);
}

fn dataset_by_name(name: &str) -> DatasetSpec {
    match name {
        "100bp_1" => DatasetSpec::d100(),
        "250bp_1" => DatasetSpec::d250(),
        "10Kbp" => DatasetSpec::d10k(),
        "30Kbp" => DatasetSpec::d30k(),
        "10Kbp_hifi" => DatasetSpec::d10k_hifi(),
        other => fail(&format!(
            "unknown dataset '{other}' (100bp_1|250bp_1|10Kbp|30Kbp|10Kbp_hifi)"
        )),
    }
}

fn parse_algo(code: &str) -> Algo {
    match code {
        "wfa" => Algo::Wfa,
        "biwfa" => Algo::BiWfa,
        "ss" => Algo::Ss,
        "sw" => Algo::Sw,
        "nw" => Algo::Nw,
        other => fail(&format!("unknown algo '{other}'")),
    }
}

fn parse_tier(code: &str) -> Tier {
    match code {
        "base" => Tier::Base,
        "vec" => Tier::Vec,
        "quetzal" => Tier::Quetzal,
        "quetzal+c" => Tier::QuetzalC,
        other => fail(&format!("unknown tier '{other}'")),
    }
}

fn parse_alphabet(code: &str) -> Alphabet {
    match code {
        "dna" => Alphabet::Dna,
        "rna" => Alphabet::Rna,
        "protein" => Alphabet::Protein,
        other => fail(&format!("unknown alphabet '{other}'")),
    }
}

struct Options {
    addr: Option<String>,
    tenant: String,
    algo: Algo,
    tier: Tier,
    dataset: String,
    pairs: usize,
    seed: u64,
    cases: u64,
    offline: bool,
    input: Option<String>,
    ckpt: Option<String>,
    output: Option<String>,
    alphabet: Alphabet,
    threshold: u32,
    shard: u64,
    shard_deadline_ms: Option<u64>,
    shard_insts: Option<u64>,
    retry_quarantined: bool,
    retries: u32,
    deadline_ms: Option<u64>,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            addr: None,
            tenant: "default".to_string(),
            algo: Algo::Ss,
            tier: Tier::QuetzalC,
            dataset: "100bp_1".to_string(),
            pairs: 4,
            seed: 0xF4417,
            cases: 16,
            offline: false,
            input: None,
            ckpt: None,
            output: None,
            alphabet: Alphabet::Dna,
            threshold: 100,
            shard: 256,
            shard_deadline_ms: None,
            shard_insts: None,
            retry_quarantined: false,
            retries: 5,
            deadline_ms: None,
        }
    }
}

fn next_arg(iter: &mut impl Iterator<Item = String>, flag: &str) -> String {
    iter.next()
        .unwrap_or_else(|| fail(&format!("{flag} needs an argument")))
}

fn parse_options(mut args: impl Iterator<Item = String>) -> Options {
    let mut opts = Options::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => opts.addr = Some(next_arg(&mut args, "--addr")),
            "--tenant" => opts.tenant = next_arg(&mut args, "--tenant"),
            "--algo" => opts.algo = parse_algo(&next_arg(&mut args, "--algo")),
            "--tier" => opts.tier = parse_tier(&next_arg(&mut args, "--tier")),
            "--dataset" => opts.dataset = next_arg(&mut args, "--dataset"),
            "--pairs" => {
                opts.pairs = next_arg(&mut args, "--pairs")
                    .parse()
                    .unwrap_or_else(|_| fail("--pairs needs a number"))
            }
            "--seed" => {
                let v = next_arg(&mut args, "--seed");
                opts.seed = v
                    .strip_prefix("0x")
                    .map(|h| u64::from_str_radix(h, 16).ok())
                    .unwrap_or_else(|| v.parse().ok())
                    .unwrap_or_else(|| fail("--seed needs a number"));
            }
            "--cases" => {
                opts.cases = next_arg(&mut args, "--cases")
                    .parse()
                    .unwrap_or_else(|_| fail("--cases needs a number"))
            }
            "--offline" => opts.offline = true,
            "--input" => opts.input = Some(next_arg(&mut args, "--input")),
            "--ckpt" => opts.ckpt = Some(next_arg(&mut args, "--ckpt")),
            "--output" => opts.output = Some(next_arg(&mut args, "--output")),
            "--alphabet" => opts.alphabet = parse_alphabet(&next_arg(&mut args, "--alphabet")),
            "--threshold" => {
                opts.threshold = next_arg(&mut args, "--threshold")
                    .parse()
                    .unwrap_or_else(|_| fail("--threshold needs a number"))
            }
            "--shard" => {
                opts.shard = next_arg(&mut args, "--shard")
                    .parse()
                    .unwrap_or_else(|_| fail("--shard needs a number"))
            }
            "--shard-deadline-ms" => {
                opts.shard_deadline_ms = Some(
                    next_arg(&mut args, "--shard-deadline-ms")
                        .parse()
                        .unwrap_or_else(|_| fail("--shard-deadline-ms needs a number")),
                )
            }
            "--shard-insts" => {
                opts.shard_insts = Some(
                    next_arg(&mut args, "--shard-insts")
                        .parse()
                        .unwrap_or_else(|_| fail("--shard-insts needs a number")),
                )
            }
            "--retry-quarantined" => opts.retry_quarantined = true,
            "--retries" => {
                opts.retries = next_arg(&mut args, "--retries")
                    .parse()
                    .unwrap_or_else(|_| fail("--retries needs a number"))
            }
            "--deadline" => {
                opts.deadline_ms = Some(
                    next_arg(&mut args, "--deadline")
                        .parse()
                        .unwrap_or_else(|_| fail("--deadline needs milliseconds")),
                )
            }
            "--help" | "-h" => usage(),
            other => fail(&format!("unknown argument '{other}'")),
        }
    }
    opts
}

/// Stages the Fig. 3 workload slice: `n` generated pairs of the chosen
/// Table II dataset, with the experiment harness's own SS threshold.
fn stage_align_job(opts: &Options) -> JobSpec {
    let spec = dataset_by_name(&opts.dataset);
    let wl = Workload {
        pairs: spec.generate_n(SEED, opts.pairs.max(1)),
        spec,
    };
    JobSpec::Align {
        algo: opts.algo,
        tier: opts.tier,
        alphabet: wl.spec.alphabet,
        ss_threshold: wl.ss_threshold(),
        budgets: Budgets::default(),
        pairs: wl.pairs,
    }
}

fn run_offline(spec: &JobSpec) -> String {
    let runner = BatchRunner::from_env();
    let config = MachineConfig::default();
    let pool = MachinePool::new(&config, runner.exec_mode());
    let mut frames = Vec::new();
    job::execute(&runner, &pool, spec, 16, &mut |f| frames.push(f));
    render_report(&frames)
}

fn connect(opts: &Options) -> Client<std::net::TcpStream> {
    let addr = opts
        .addr
        .as_deref()
        .unwrap_or_else(|| fail("--addr HOST:PORT is required (or use --offline)"));
    Client::connect(addr).unwrap_or_else(|e| fail(&format!("cannot connect to {addr}: {e}")))
}

fn run_submit(opts: &Options, spec: &JobSpec) {
    if opts.offline {
        print!("{}", run_offline(spec));
        return;
    }
    let mut client = connect(opts);
    let policy = RetryPolicy {
        retries: opts.retries,
        deadline: opts.deadline_ms.map(Duration::from_millis),
        seed: opts.seed,
        ..RetryPolicy::default()
    };
    let outcome = client.submit_with_retry(
        &opts.tenant,
        spec,
        &policy,
        |attempt, inflight, max, delay| {
            eprintln!(
                "qzclient: tenant busy ({inflight}/{max} in flight); \
                 retry {attempt}/{retries} in {delay:?}",
                retries = policy.retries
            );
        },
    );
    match outcome {
        Ok(SubmitOutcome::Report(frames)) => {
            print!("{}", render_report(&frames));
            if let Some(quetzal_served::Response::Done(s)) = frames.last() {
                eprintln!(
                    "qzclient: {} item(s): {} ok, {} failed, {} rejected, {} recovered",
                    s.items, s.ok, s.failed, s.rejected, s.recovered
                );
            }
        }
        Ok(SubmitOutcome::Busy { inflight, max }) => fail(&format!(
            "tenant busy ({inflight}/{max} in flight) after {} attempt(s)",
            opts.retries + 1
        )),
        Ok(SubmitOutcome::Draining) => fail("daemon is draining for shutdown"),
        Err(e) => fail(&e.to_string()),
    }
}

/// Stages the crash-safe ingestion job from the `ingest` subcommand's
/// flags. Paths are daemon-local: the daemon, not this client, opens
/// them.
fn stage_ingest_job(opts: &Options) -> JobSpec {
    let input = opts
        .input
        .clone()
        .unwrap_or_else(|| fail("ingest needs --input FILE (daemon-local path)"));
    let checkpoint_dir = opts
        .ckpt
        .clone()
        .unwrap_or_else(|| fail("ingest needs --ckpt DIR (daemon-local path)"));
    JobSpec::Ingest {
        input,
        checkpoint_dir,
        output: opts.output.clone(),
        algo: opts.algo,
        tier: opts.tier,
        alphabet: opts.alphabet,
        ss_threshold: opts.threshold,
        budgets: Budgets::default(),
        shard_items: opts.shard.max(1),
        deadline_ms: opts.shard_deadline_ms,
        shard_insts: opts.shard_insts,
        retry_quarantined: opts.retry_quarantined,
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else { usage() };
    let opts = parse_options(args);
    match command.as_str() {
        "submit" => {
            let spec = stage_align_job(&opts);
            run_submit(&opts, &spec);
        }
        "ingest" => {
            let spec = stage_ingest_job(&opts);
            run_submit(&opts, &spec);
        }
        "fault" => {
            let spec = JobSpec::Fault {
                seed: opts.seed,
                cases: (0..opts.cases.max(1)).collect(),
            };
            run_submit(&opts, &spec);
        }
        "ping" => {
            let mut client = connect(&opts);
            client.ping().unwrap_or_else(|e| fail(&e.to_string()));
            println!("pong");
        }
        "stats" => {
            let mut client = connect(&opts);
            let stats = client.stats().unwrap_or_else(|e| fail(&e.to_string()));
            println!("{}", stats.dump());
        }
        "shutdown" => {
            let mut client = connect(&opts);
            let stats = client.shutdown().unwrap_or_else(|e| fail(&e.to_string()));
            println!("{}", stats.dump());
        }
        _ => usage(),
    }
}
