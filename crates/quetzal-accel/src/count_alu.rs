//! The count ALU: hardware pipeline of the `qzcount` instruction
//! (paper §IV-D, Fig. 11).
//!
//! Each count ALU instance processes one pair of 64-bit segments:
//!
//! 1. bitwise XNOR detects matching bits;
//! 2. a trailing-ones counter measures the run of matching bits starting
//!    at the least-significant end;
//! 3. a shift by `log2(element bits)` converts matching *bits* into
//!    matching *elements* (shift by 1, 3 or 6 for 2-, 8- and 64-bit
//!    elements).
//!
//! QUETZAL instantiates one count ALU per 64-bit VPU lane, so a 512-bit
//! vector is processed by [`qzcount_vector`] in a single instruction.

use quetzal_isa::{EncSize, LANES_64};

/// Counts consecutive matching elements between two 64-bit segments,
/// starting from the least-significant element.
///
/// ```
/// use quetzal_accel::count_alu::qzcount_segment;
/// use quetzal_isa::EncSize;
///
/// // 2-bit elements: 0b01_01 vs 0b11_01 — element 0 matches, element 1 differs.
/// assert_eq!(qzcount_segment(0b0101, 0b1101, EncSize::E2), 1);
/// // Identical segments: all 32 2-bit elements match.
/// assert_eq!(qzcount_segment(7, 7, EncSize::E2), 32);
/// ```
#[inline]
pub fn qzcount_segment(a: u64, b: u64, esize: EncSize) -> u64 {
    // Stage 1: XNOR marks matching bits with 1.
    let matched = !(a ^ b);
    // Stage 2: count trailing ones.
    let trailing = matched.trailing_ones() as u64;
    // Stage 3: bits -> elements. A partial element match must not count,
    // which the shift achieves exactly because element sizes are powers
    // of two.
    trailing >> esize.count_shift()
}

/// Applies the count ALU to all eight 64-bit lanes of a vector pair,
/// as the `qzcount` instruction does.
pub fn qzcount_vector(a: &[u64; LANES_64], b: &[u64; LANES_64], esize: EncSize) -> [u64; LANES_64] {
    let mut out = [0u64; LANES_64];
    for i in 0..LANES_64 {
        out[i] = qzcount_segment(a[i], b[i], esize);
    }
    out
}

/// Pipeline depth of the count ALU in cycles (XNOR, trailing-ones count,
/// shift — fully pipelined, one result per cycle per lane).
pub const COUNT_ALU_LATENCY: u64 = 3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_segments_count_all_elements() {
        assert_eq!(qzcount_segment(u64::MAX, u64::MAX, EncSize::E2), 32);
        assert_eq!(qzcount_segment(0, 0, EncSize::E8), 8);
        assert_eq!(qzcount_segment(42, 42, EncSize::E64), 1);
    }

    #[test]
    fn mismatch_in_first_element_counts_zero() {
        assert_eq!(qzcount_segment(0b01, 0b10, EncSize::E2), 0);
        assert_eq!(qzcount_segment(0xFF, 0x00, EncSize::E8), 0);
        assert_eq!(qzcount_segment(1, 2, EncSize::E64), 0);
    }

    #[test]
    fn partial_element_match_does_not_count() {
        // 2-bit elements: element 0 is 0b01 vs 0b11 — the low bit matches
        // but the element does not, so the count must be 0.
        assert_eq!(qzcount_segment(0b01, 0b11, EncSize::E2), 0);
        // 8-bit elements: first byte matches in its low 7 bits only.
        assert_eq!(qzcount_segment(0x7F, 0xFF, EncSize::E8), 0);
    }

    #[test]
    fn count_stops_at_first_mismatching_element() {
        // 8-bit elements: bytes 0..3 match, byte 3 differs.
        let a = u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]);
        let b = u64::from_le_bytes([1, 2, 3, 9, 5, 6, 7, 8]);
        assert_eq!(qzcount_segment(a, b, EncSize::E8), 3);
    }

    #[test]
    fn count_matches_scalar_reference_2bit() {
        // Cross-check against a naive per-element comparison.
        let mut x = 0x0123_4567_89AB_CDEFu64;
        let y = x;
        // Flip element 13 (bits 26..28).
        x ^= 0b11 << 26;
        let naive = (0..32)
            .take_while(|&i| ((x >> (2 * i)) & 3) == ((y >> (2 * i)) & 3))
            .count() as u64;
        assert_eq!(naive, 13);
        assert_eq!(qzcount_segment(x, y, EncSize::E2), naive);
    }

    #[test]
    fn vector_form_applies_per_lane() {
        let a = [0u64, 1, 2, 3, 4, 5, 6, 7];
        let mut b = a;
        b[4] = 99;
        let counts = qzcount_vector(&a, &b, EncSize::E64);
        assert_eq!(counts, [1, 1, 1, 1, 0, 1, 1, 1]);
    }
}
