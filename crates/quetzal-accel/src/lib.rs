//! Functional and timing model of the QUETZAL accelerator
//! micro-architecture (paper §IV).
//!
//! The accelerator sits next to the CPU's vector processing unit and is
//! composed of four blocks (paper Fig. 5):
//!
//! * [`encoder`] — the static 2-bit data encoder for DNA/RNA input
//!   (§IV-A, Fig. 9a/b);
//! * [`qbuffer`] — the pair of direct-mapped, multi-ported scratchpad
//!   buffers, including the unaligned sub-word read logic (§IV-B,
//!   Fig. 10) and the bank-conflict write serialisation;
//! * [`count_alu`] — the consecutive-match counting pipeline behind the
//!   `qzcount` instruction (§IV-D, Fig. 11);
//! * access control — the glue that owns the `qzconf` state and routes
//!   VPU requests to the buffers (§IV-C), implemented by [`QBuffers`].
//!
//! The same structures also carry the timing model (read latency
//! `8/ports + 1`, write bank conflicts) and the post-place-and-route
//! [`area`] model that regenerates the paper's Table III.

// Guest-reachable paths must return typed errors, never unwrap (see
// DESIGN.md "Failure model & fault injection"); tests are exempt.
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod area;
pub mod config;
pub mod count_alu;
pub mod encoder;
pub mod qbuffer;

pub use config::{PortCount, QzConfig};
pub use qbuffer::{BankProfile, QBuffer, QBuffers, QzFault};
