//! The QUETZAL data encoder (paper §IV-A, Fig. 9).
//!
//! For DNA/RNA input, the encoder extracts bits 1 and 2 of each ASCII
//! character — a pure wiring operation in hardware — producing the 2-bit
//! code `(c >> 1) & 3`. A 512-bit vector of 64 characters is thus
//! compressed into a 128-bit packed payload that the write logic stores
//! into two consecutive SRAM columns (`segA`/`segB`, §IV-B.2).

use quetzal_genomics::packed::encode_base;
use quetzal_isa::VLEN_BYTES;

/// Encodes a 512-bit vector of 64 ASCII characters into the 128-bit
/// packed 2-bit representation, returned as two 64-bit segments
/// (`segA` = characters 0–31, `segB` = characters 32–63).
///
/// ```
/// use quetzal_accel::encoder::encode_vector;
///
/// let mut chars = [b'A'; 64];
/// chars[0] = b'G'; // G encodes to 0b11
/// let (seg_a, _seg_b) = encode_vector(&chars);
/// assert_eq!(seg_a & 0b11, 0b11);
/// ```
pub fn encode_vector(chars: &[u8; VLEN_BYTES]) -> (u64, u64) {
    let mut seg_a = 0u64;
    let mut seg_b = 0u64;
    for i in 0..32 {
        seg_a |= (encode_base(chars[i]) as u64) << (2 * i);
        seg_b |= (encode_base(chars[i + 32]) as u64) << (2 * i);
    }
    (seg_a, seg_b)
}

/// Latency of the encoder stage in cycles: bit extraction and packing is
/// combinational; the write into the QBUFFER takes a single cycle
/// (paper §IV-B.2: "a write in encoded-mode is executed in a single
/// cycle").
pub const ENCODE_LATENCY: u64 = 1;

#[cfg(test)]
mod tests {
    use super::*;
    use quetzal_genomics::packed::Packed2;
    use quetzal_genomics::Alphabet;

    #[test]
    fn encoder_matches_packed2_layout() {
        let bases = b"ACGTACGTACGTACGTACGTACGTACGTACGTTTTTGGGGCCCCAAAATTTTGGGGCCCCAAAA";
        let mut chars = [0u8; 64];
        chars.copy_from_slice(bases);
        let (a, b) = encode_vector(&chars);
        let packed = Packed2::from_bytes(bases, Alphabet::Dna);
        assert_eq!(a, packed.as_words()[0]);
        assert_eq!(b, packed.as_words()[1]);
    }

    #[test]
    fn all_same_base() {
        let chars = [b'G'; 64];
        let (a, b) = encode_vector(&chars);
        assert_eq!(a, u64::MAX);
        assert_eq!(b, u64::MAX);
        let chars = [b'A'; 64];
        let (a, b) = encode_vector(&chars);
        assert_eq!(a, 0);
        assert_eq!(b, 0);
    }
}
