//! The QBUFFER scratchpad pair and its access-control logic
//! (paper §IV-B and §IV-C).
//!
//! Each QBUFFER is a direct-mapped, index-addressed SRAM structure of
//! eight 64-bit-wide banks (one per VPU lane), replicated once per read
//! port. It supports three element sizes (2-, 8- and 64-bit) and
//! unaligned sub-word reads: a read fetches two consecutive words and
//! splices them at the element's bit offset (Fig. 10).
//!
//! Functional state and timing live together here so that the simulator
//! can both *compute* results and *charge* the right number of cycles:
//!
//! * vector read latency: `8 / ports + 1` cycles ([`QzConfig::read_latency`]);
//! * direct-mode write latency: the maximum number of requests landing
//!   on the same bank (§IV-B.2: "if all the requests go to the same
//!   bank, the direct-mode write latency will be eight cycles").

use crate::config::QzConfig;
use crate::count_alu::qzcount_segment;
use crate::encoder::encode_vector;
use quetzal_isa::{EncSize, QzOp, LANES_64, VLEN_BYTES};

/// Number of SRAM banks per read-port copy (one per 64-bit VPU lane).
pub const NUM_BANKS: usize = LANES_64;

/// Guest-reachable QBUFFER access faults. The hardware raises these as
/// precise exceptions at commit; the simulator surfaces them as typed
/// errors through
/// [`SimError::QBufferIndexOutOfRange`](../quetzal_uarch/interp/enum.SimError.html)
/// instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QzFault {
    /// An encoded-mode write (`qzencode`) used an element index that is
    /// not aligned to a whole SRAM word for the configured element size.
    MisalignedEncode {
        /// The offending element index.
        idx: u64,
        /// The required alignment in elements.
        align: u64,
    },
}

impl std::fmt::Display for QzFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QzFault::MisalignedEncode { idx, align } => {
                write!(f, "qzencode index {idx} not aligned to {align} elements")
            }
        }
    }
}

impl std::error::Error for QzFault {}

/// One direct-mapped scratchpad buffer.
///
/// Indices address *elements* (of the configured [`EncSize`]), not
/// bytes; out-of-range indices wrap modulo the capacity, mirroring
/// direct-mapped hardware aliasing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QBuffer {
    words: Vec<u64>,
}

impl QBuffer {
    /// Creates a zero-filled buffer of `bytes` capacity.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a positive multiple of 8.
    pub fn new(bytes: usize) -> QBuffer {
        assert!(
            bytes > 0 && bytes.is_multiple_of(8),
            "QBUFFER capacity must be a positive multiple of 8 bytes"
        );
        QBuffer {
            words: vec![0u64; bytes / 8],
        }
    }

    /// Capacity in 64-bit words.
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Capacity in elements of the given size.
    pub fn capacity_elems(&self, esize: EncSize) -> u64 {
        (self.words.len() * esize.per_word()) as u64
    }

    /// The word index an element maps to (after direct-mapped wrapping).
    fn word_of(&self, elem_idx: u64, esize: EncSize) -> usize {
        let wrapped = elem_idx % self.capacity_elems(esize);
        (wrapped / esize.per_word() as u64) as usize
    }

    /// The SRAM bank an element's word lives in (words are interleaved
    /// across banks like the VRF, §IV-B.1).
    pub fn bank_of(&self, elem_idx: u64, esize: EncSize) -> usize {
        self.word_of(elem_idx, esize) % NUM_BANKS
    }

    /// Reads the 64-bit segment starting at `elem_idx` (paper Fig. 10):
    /// two consecutive words are fetched and spliced at the element's bit
    /// offset. For 64-bit elements this returns the element itself.
    pub fn read_segment(&self, elem_idx: u64, esize: EncSize) -> u64 {
        let cap = self.capacity_elems(esize);
        let idx = elem_idx % cap;
        let per_word = esize.per_word() as u64;
        let word = (idx / per_word) as usize;
        let bit = ((idx % per_word) as usize) * esize.bits();
        let lo = self.words[word];
        if bit == 0 {
            lo
        } else {
            let hi = self.words[(word + 1) % self.words.len()];
            (lo >> bit) | (hi << (64 - bit))
        }
    }

    /// Writes a single element (read-modify-write for sub-word sizes).
    pub fn write_elem(&mut self, elem_idx: u64, value: u64, esize: EncSize) {
        let cap = self.capacity_elems(esize);
        let idx = elem_idx % cap;
        let per_word = esize.per_word() as u64;
        let word = (idx / per_word) as usize;
        match esize {
            EncSize::E64 => self.words[word] = value,
            _ => {
                let bit = ((idx % per_word) as usize) * esize.bits();
                let mask = ((1u64 << esize.bits()) - 1) << bit;
                self.words[word] = (self.words[word] & !mask) | ((value << bit) & mask);
            }
        }
    }

    /// Writes the two encoded segments produced by the data encoder into
    /// consecutive words starting at 2-bit element position `elem_idx`
    /// (encoded-mode write, §IV-B.2). `elem_idx` must be 32-aligned, as
    /// the hardware writes whole SRAM columns.
    ///
    /// # Panics
    ///
    /// Panics if `elem_idx` is not a multiple of 32.
    pub fn write_encoded(&mut self, elem_idx: u64, seg_a: u64, seg_b: u64) {
        assert!(
            elem_idx.is_multiple_of(32),
            "encoded-mode writes are word-aligned (32 bases)"
        );
        let cap = self.capacity_elems(EncSize::E2);
        let word = ((elem_idx % cap) / 32) as usize;
        let n = self.words.len();
        self.words[word] = seg_a;
        self.words[(word + 1) % n] = seg_b;
    }

    /// Raw word access (for tests and state save/restore).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Flips one SRAM bit (fault injection: models a soft error in the
    /// scratchpad array). `word` wraps modulo capacity and `bit` modulo
    /// 64, so any pair of values addresses a real cell.
    pub fn flip_bit(&mut self, word: usize, bit: u32) {
        let n = self.words.len();
        self.words[word % n] ^= 1u64 << (bit % 64);
    }

    /// Clears the buffer to zero.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }
}

/// Applies a `qzmhm`/`qzmm` combining operation to two 64-bit lane
/// values. `Count` routes through the count ALU over the full 64-bit
/// segments; every other operation works element-wise on the *first*
/// element at the addressed index (operands are masked to the configured
/// element width), so e.g. `qzmm<cmpeq>` compares single characters.
pub fn apply_qzop(op: QzOp, a: u64, b: u64, esize: EncSize) -> u64 {
    let (a, b) = if op == QzOp::Count {
        (a, b)
    } else {
        let m = elem_mask(esize);
        (a & m, b & m)
    };
    match op {
        QzOp::Count => qzcount_segment(a, b, esize),
        QzOp::Add => a.wrapping_add(b),
        QzOp::Sub => a.wrapping_sub(b),
        QzOp::CmpEq => u64::from(a == b),
        QzOp::Min => (a as i64).min(b as i64) as u64,
        QzOp::Max => (a as i64).max(b as i64) as u64,
        QzOp::Mul => a.wrapping_mul(b),
    }
}

/// Bit mask of one element at the configured size.
fn elem_mask(esize: EncSize) -> u64 {
    match esize {
        EncSize::E64 => u64::MAX,
        e => (1u64 << e.bits()) - 1,
    }
}

/// How one vector of direct-mode write requests lands on the SRAM banks
/// (§IV-B.2). Pure function of the addressed buffer geometry and the
/// lane indices — the write itself does not change bank mapping — so
/// timing models and observability probes can ask "how would this
/// vector serialise?" without touching buffer state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BankProfile {
    /// Requests landing on each bank.
    pub per_bank: [u64; NUM_BANKS],
}

impl BankProfile {
    /// Profiles the bank distribution of `lanes` (direct-mode write
    /// requests against `buf` at element size `esize`).
    pub fn of(buf: &QBuffer, esize: EncSize, lanes: &[(u64, u64)]) -> BankProfile {
        let mut per_bank = [0u64; NUM_BANKS];
        for &(idx, _) in lanes {
            per_bank[buf.bank_of(idx, esize)] += 1;
        }
        BankProfile { per_bank }
    }

    /// The serialised latency of the write: the maximum number of
    /// requests hitting one bank, and never less than one cycle (an
    /// empty or conflict-free write still occupies its slot).
    pub fn serialisation(&self) -> u64 {
        self.per_bank.iter().copied().max().unwrap_or(0).max(1)
    }

    /// Cycles lost to conflicts beyond the first access (0 when the
    /// vector is conflict-free).
    pub fn conflict_cycles(&self) -> u64 {
        self.serialisation() - 1
    }

    /// Number of banks receiving at least one request.
    pub fn banks_touched(&self) -> usize {
        self.per_bank.iter().filter(|&&n| n > 0).count()
    }
}

/// The accelerator state visible to the core: two QBUFFERs plus the
/// access-control registers set by `qzconf` (§IV-C).
#[derive(Debug, Clone)]
pub struct QBuffers {
    bufs: [QBuffer; 2],
    /// Configured element counts (`Eb0`, `Eb1`).
    pub eb: [u64; 2],
    /// Configured element size (`Esiz`).
    pub esize: EncSize,
    cfg: QzConfig,
}

impl QBuffers {
    /// Creates the accelerator state for a hardware configuration.
    pub fn new(cfg: QzConfig) -> QBuffers {
        QBuffers {
            bufs: [
                QBuffer::new(cfg.bytes_per_buffer()),
                QBuffer::new(cfg.bytes_per_buffer()),
            ],
            eb: [0, 0],
            esize: EncSize::E64,
            cfg,
        }
    }

    /// The hardware configuration.
    pub fn config(&self) -> QzConfig {
        self.cfg
    }

    /// Restores power-on state (zeroed buffers, default access-control
    /// registers) without reallocating the SRAM arrays. A reset
    /// instance is indistinguishable from `QBuffers::new(self.config())`.
    pub fn reset(&mut self) {
        self.bufs[0].clear();
        self.bufs[1].clear();
        self.eb = [0, 0];
        self.esize = EncSize::E64;
    }

    /// Executes `qzconf`: sets element counts and element size.
    ///
    /// Returns `false` (and leaves state unchanged) if the `Esiz` field
    /// is not a valid encoding — the hardware would raise an undefined
    /// instruction fault.
    pub fn conf(&mut self, eb0: u64, eb1: u64, esiz_field: u64) -> bool {
        match EncSize::from_field(esiz_field) {
            Some(esize) => {
                self.eb = [eb0, eb1];
                self.esize = esize;
                true
            }
            None => false,
        }
    }

    /// Buffer accessor.
    pub fn buf(&self, sel: usize) -> &QBuffer {
        &self.bufs[sel]
    }

    /// Mutable buffer accessor.
    pub fn buf_mut(&mut self, sel: usize) -> &mut QBuffer {
        &mut self.bufs[sel]
    }

    /// Executes `qzencode`: bulk-stores one 512-bit vector into buffer
    /// `sel` at element position `idx`, applying the encoding selected
    /// by `qzconf`:
    ///
    /// * `E2` — 64 ASCII nucleotides are 2-bit encoded into 128 bits and
    ///   written in a single cycle (paper §IV-A/§IV-B.2);
    /// * `E8` — 64 characters pass through the encoder unchanged (the
    ///   paper's 8-bit protein encoding) and fill eight SRAM words;
    /// * `E64` — the eight 64-bit lanes are written to consecutive
    ///   words (used to stage DP values and lookup tables).
    ///
    /// Returns the latency in cycles (one per 128 bits written).
    ///
    /// # Errors
    ///
    /// Returns [`QzFault::MisalignedEncode`] if `idx` is not aligned to
    /// a whole SRAM word for the configured element size (32 elements in
    /// 2-bit mode, 8 in 8-bit mode; 64-bit mode has no constraint). The
    /// buffer is untouched on error — a precise commit-time fault.
    pub fn encode(
        &mut self,
        sel: usize,
        chars: &[u8; VLEN_BYTES],
        idx: u64,
    ) -> Result<u64, QzFault> {
        match self.esize {
            EncSize::E2 => {
                if !idx.is_multiple_of(32) {
                    return Err(QzFault::MisalignedEncode { idx, align: 32 });
                }
                let (a, b) = encode_vector(chars);
                self.bufs[sel].write_encoded(idx, a, b);
                Ok(crate::encoder::ENCODE_LATENCY)
            }
            EncSize::E8 => {
                if !idx.is_multiple_of(8) {
                    return Err(QzFault::MisalignedEncode { idx, align: 8 });
                }
                let buf = &mut self.bufs[sel];
                let cap = buf.capacity_elems(EncSize::E8);
                // Wrap the base index first so the per-word offsets can
                // never overflow, whatever the guest put in `idx`.
                let base = idx % cap;
                for (w, chunk) in chars.chunks(8).enumerate() {
                    let mut word = [0u8; 8];
                    word.copy_from_slice(chunk);
                    let elem = (base + 8 * w as u64) % cap;
                    let wi = (elem / 8) as usize;
                    buf.words[wi] = u64::from_le_bytes(word);
                }
                Ok(4) // 512 bits at 128 bits per cycle
            }
            EncSize::E64 => {
                let buf = &mut self.bufs[sel];
                let cap = buf.capacity_elems(EncSize::E64);
                let base = idx % cap;
                for (w, chunk) in chars.chunks(8).enumerate() {
                    let mut word = [0u8; 8];
                    word.copy_from_slice(chunk);
                    let elem = (base + w as u64) % cap;
                    buf.words[elem as usize] = u64::from_le_bytes(word);
                }
                Ok(4)
            }
        }
    }

    /// Profiles how a direct-mode write vector against buffer `sel`
    /// would land on the SRAM banks, without performing it.
    pub fn write_profile(&self, sel: usize, lanes: &[(u64, u64)]) -> BankProfile {
        BankProfile::of(&self.bufs[sel], self.esize, lanes)
    }

    /// Executes `qzstore` in direct mode: stores `(idx, val)` pairs for
    /// every active lane. Returns the latency: the maximum number of
    /// requests hitting the same bank (≥ 1).
    pub fn store(&mut self, sel: usize, lanes: &[(u64, u64)]) -> u64 {
        let profile = self.write_profile(sel, lanes);
        for &(idx, val) in lanes {
            self.bufs[sel].write_elem(idx, val, self.esize);
        }
        profile.serialisation()
    }

    /// Executes the read-modify-write `qzupdate<op>` in lane order, so
    /// duplicate indices accumulate (histogram semantics). Latency is
    /// bank-conflict serialised like `qzstore`.
    pub fn update(&mut self, sel: usize, op: QzOp, lanes: &[(u64, u64)]) -> u64 {
        let profile = self.write_profile(sel, lanes);
        for &(idx, val) in lanes {
            let old = self.bufs[sel].read_segment(idx, self.esize) & elem_mask(self.esize);
            self.bufs[sel].write_elem(idx, apply_qzop(op, old, val, self.esize), self.esize);
        }
        profile.serialisation()
    }

    /// Executes `qzload` for one vector of per-lane element indices.
    /// Inactive lanes (mask bit clear) return 0. Returns `(values,
    /// latency)`.
    pub fn load(
        &self,
        sel: usize,
        idx: &[u64; LANES_64],
        mask: &[bool; LANES_64],
    ) -> ([u64; LANES_64], u64) {
        let mut out = [0u64; LANES_64];
        for i in 0..LANES_64 {
            if mask[i] {
                out[i] = self.bufs[sel].read_segment(idx[i], self.esize);
            }
        }
        (out, self.cfg.read_latency())
    }

    /// Executes `qzmhm<op>`: reads both buffers at per-lane indices and
    /// combines. Returns `(values, latency)`; both buffer reads proceed
    /// in parallel (each buffer has its own ports), so latency is one
    /// buffer read plus the combining-ALU stage.
    pub fn mhm(
        &self,
        op: QzOp,
        idx0: &[u64; LANES_64],
        idx1: &[u64; LANES_64],
        mask: &[bool; LANES_64],
    ) -> ([u64; LANES_64], u64) {
        let mut out = [0u64; LANES_64];
        for i in 0..LANES_64 {
            if mask[i] {
                let a = self.bufs[0].read_segment(idx0[i], self.esize);
                let b = self.bufs[1].read_segment(idx1[i], self.esize);
                out[i] = apply_qzop(op, a, b, self.esize);
            }
        }
        (out, self.cfg.read_latency() + 1)
    }

    /// Executes `qzmm<op>`: combines a VRF vector with one buffer read.
    pub fn mm(
        &self,
        op: QzOp,
        sel: usize,
        val: &[u64; LANES_64],
        idx: &[u64; LANES_64],
        mask: &[bool; LANES_64],
    ) -> ([u64; LANES_64], u64) {
        let mut out = [0u64; LANES_64];
        for i in 0..LANES_64 {
            if mask[i] {
                let b = self.bufs[sel].read_segment(idx[i], self.esize);
                out[i] = apply_qzop(op, val[i], b, self.esize);
            }
        }
        (out, self.cfg.read_latency() + 1)
    }

    /// Loads an entire byte image into a buffer (used by the runtime to
    /// pre-stage sequences; equivalent to a loop of `qzencode`/`qzstore`).
    pub fn load_image(&mut self, sel: usize, image: &[u8]) {
        let buf = &mut self.bufs[sel];
        buf.clear();
        for (i, chunk) in image.chunks(8).enumerate() {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            let n = buf.num_words();
            buf.words[i % n] = u64::from_le_bytes(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quetzal_genomics::packed::Packed2;
    use quetzal_genomics::Alphabet;

    fn small() -> QBuffers {
        QBuffers::new(QzConfig::QZ_8P)
    }

    #[test]
    fn write_read_round_trip_e64() {
        let mut q = small();
        q.conf(100, 100, 2);
        q.buf_mut(0).write_elem(5, 0xDEAD_BEEF, EncSize::E64);
        assert_eq!(q.buf(0).read_segment(5, EncSize::E64), 0xDEAD_BEEF);
    }

    #[test]
    fn write_read_round_trip_e2() {
        let mut q = small();
        q.conf(64, 64, 0);
        for i in 0..64u64 {
            q.buf_mut(0).write_elem(i, i % 4, EncSize::E2);
        }
        for i in 0..64u64 {
            let seg = q.buf(0).read_segment(i, EncSize::E2);
            assert_eq!(seg & 3, i % 4, "element {i}");
        }
    }

    #[test]
    fn unaligned_segment_matches_packed2() {
        let seq: Vec<u8> = (0..200).map(|i| b"ACGT"[(i * 7 + 3) % 4]).collect();
        let packed = Packed2::from_bytes(&seq, Alphabet::Dna);
        let mut q = small();
        q.load_image(0, &packed.to_le_bytes());
        for start in [0usize, 1, 31, 32, 33, 63, 100, 150] {
            assert_eq!(
                q.buf(0).read_segment(start as u64, EncSize::E2),
                packed.segment(start),
                "segment at {start}"
            );
        }
    }

    #[test]
    fn encoded_mode_write_matches_encoder() {
        let mut q = small();
        q.conf(128, 128, 0); // 2-bit mode
        let mut chars = [b'A'; 64];
        chars[..4].copy_from_slice(b"GTCA");
        q.encode(1, &chars, 64).unwrap();
        let seg = q.buf(1).read_segment(64, EncSize::E2);
        // G=11, T=10, C=01, A=00 packed LSB-first.
        assert_eq!(seg & 0xFF, 0b00_01_10_11);
    }

    #[test]
    fn encoded_mode_rejects_unaligned_index() {
        let mut q = small();
        q.conf(128, 128, 0); // 2-bit mode
        assert_eq!(
            q.encode(0, &[b'A'; 64], 7),
            Err(QzFault::MisalignedEncode { idx: 7, align: 32 }),
        );
        assert!(
            q.buf(0).words().iter().all(|&w| w == 0),
            "faulting encode must not touch the buffer"
        );
        // 8-bit mode requires word (8-element) alignment.
        q.conf(128, 128, 1);
        assert_eq!(
            q.encode(0, &[b'A'; 64], 12),
            Err(QzFault::MisalignedEncode { idx: 12, align: 8 }),
        );
        // 64-bit mode has no alignment constraint: any index encodes.
        q.conf(128, 128, 2);
        assert!(q.encode(0, &[b'A'; 64], 7).is_ok());
    }

    #[test]
    fn encode_e8_stores_raw_chars() {
        let mut q = small();
        q.conf(64, 64, 1); // 8-bit mode
        let mut chars = [0u8; 64];
        for (i, c) in chars.iter_mut().enumerate() {
            *c = i as u8 + 1;
        }
        let lat = q.encode(0, &chars, 0).unwrap();
        assert_eq!(lat, 4);
        assert_eq!(q.buf(0).read_segment(0, EncSize::E8) & 0xFF, 1);
        assert_eq!(q.buf(0).read_segment(63, EncSize::E8) & 0xFF, 64);
    }

    #[test]
    fn encode_e64_bulk_stores_lanes() {
        let mut q = small();
        q.conf(16, 16, 2); // 64-bit mode
        let mut chars = [0u8; 64];
        chars[..8].copy_from_slice(&0xDEAD_BEEFu64.to_le_bytes());
        chars[56..].copy_from_slice(&7u64.to_le_bytes());
        q.encode(1, &chars, 4).unwrap();
        assert_eq!(q.buf(1).read_segment(4, EncSize::E64), 0xDEAD_BEEF);
        assert_eq!(q.buf(1).read_segment(11, EncSize::E64), 7);
    }

    #[test]
    fn direct_mapped_wrapping() {
        let mut q = small();
        let cap = q.buf(0).capacity_elems(EncSize::E64);
        q.buf_mut(0).write_elem(3, 77, EncSize::E64);
        assert_eq!(q.buf(0).read_segment(3 + cap, EncSize::E64), 77);
    }

    #[test]
    fn store_latency_is_max_bank_conflicts() {
        let mut q = small();
        q.conf(1024, 1024, 2);
        // Eight consecutive word indices hit eight distinct banks: 1 cycle.
        let lanes: Vec<(u64, u64)> = (0..8).map(|i| (i, i)).collect();
        assert_eq!(q.store(0, &lanes), 1);
        // Eight indices all mapping to bank 0 (stride 8): 8 cycles.
        let lanes: Vec<(u64, u64)> = (0..8).map(|i| (i * 8, i)).collect();
        assert_eq!(q.store(0, &lanes), 8);
        // Empty store still takes a cycle.
        assert_eq!(q.store(0, &[]), 1);
    }

    #[test]
    fn load_respects_mask_and_reports_latency() {
        let mut q = small();
        q.conf(16, 16, 2);
        q.buf_mut(0).write_elem(2, 42, EncSize::E64);
        let idx = [2u64; 8];
        let mut mask = [true; 8];
        mask[7] = false;
        let (vals, lat) = q.load(0, &idx, &mask);
        assert_eq!(vals[0], 42);
        assert_eq!(vals[7], 0, "inactive lane reads zero");
        assert_eq!(lat, 2, "8-port read latency");
    }

    #[test]
    fn mhm_count_composition() {
        // Store the same 2-bit sequence in both buffers, then count.
        let mut q = small();
        q.conf(64, 64, 0);
        let seq: Vec<u8> = (0..64).map(|i| b"ACGT"[i % 4]).collect();
        let packed = Packed2::from_bytes(&seq, Alphabet::Dna);
        q.load_image(0, &packed.to_le_bytes());
        q.load_image(1, &packed.to_le_bytes());
        let idx = [0u64; 8];
        let (vals, lat) = q.mhm(QzOp::Count, &idx, &idx, &[true; 8]);
        assert_eq!(vals[0], 32, "32 consecutive matching bases per segment");
        assert_eq!(lat, 3, "read + count stage");
    }

    #[test]
    fn mm_combines_vrf_and_buffer() {
        let mut q = small();
        q.conf(16, 16, 2);
        q.buf_mut(1).write_elem(0, 10, EncSize::E64);
        q.buf_mut(1).write_elem(1, 20, EncSize::E64);
        let val = [5u64; 8];
        let idx = [0, 1, 0, 1, 0, 1, 0, 1];
        let (vals, _) = q.mm(QzOp::Add, 1, &val, &idx, &[true; 8]);
        assert_eq!(&vals[..4], &[15, 25, 15, 25]);
    }

    #[test]
    fn update_accumulates_duplicates_in_lane_order() {
        let mut q = small();
        q.conf(16, 16, 2);
        // Histogram: four increments of bin 3, two of bin 1.
        let lanes = [(3, 1), (1, 1), (3, 1), (3, 1), (1, 1), (3, 1)];
        q.update(0, QzOp::Add, &lanes);
        assert_eq!(q.buf(0).read_segment(3, EncSize::E64), 4);
        assert_eq!(q.buf(0).read_segment(1, EncSize::E64), 2);
    }

    #[test]
    fn conf_rejects_bad_esize() {
        let mut q = small();
        assert!(!q.conf(1, 1, 9));
        assert_eq!(q.esize, EncSize::E64, "state unchanged on bad field");
        assert!(q.conf(1, 1, 0));
        assert_eq!(q.esize, EncSize::E2);
    }

    #[test]
    fn apply_qzop_semantics() {
        assert_eq!(apply_qzop(QzOp::Add, 2, 3, EncSize::E64), 5);
        assert_eq!(apply_qzop(QzOp::Sub, 2, 3, EncSize::E64), u64::MAX);
        assert_eq!(apply_qzop(QzOp::CmpEq, 7, 7, EncSize::E64), 1);
        assert_eq!(apply_qzop(QzOp::CmpEq, 7, 8, EncSize::E64), 0);
        assert_eq!(apply_qzop(QzOp::Min, u64::MAX, 1, EncSize::E64), u64::MAX); // -1 < 1 signed
        assert_eq!(apply_qzop(QzOp::Max, u64::MAX, 1, EncSize::E64), 1);
        assert_eq!(apply_qzop(QzOp::Mul, 6, 7, EncSize::E64), 42);
    }

    #[test]
    fn write_profile_matches_store_latency_without_mutating() {
        let mut q = small();
        q.conf(1024, 1024, 2);
        let conflict: Vec<(u64, u64)> = (0..8).map(|i| (i * 8, i)).collect();
        let spread: Vec<(u64, u64)> = (0..8).map(|i| (i, i)).collect();

        let p = q.write_profile(0, &conflict);
        assert_eq!(p.serialisation(), 8);
        assert_eq!(p.conflict_cycles(), 7);
        assert_eq!(p.banks_touched(), 1);
        // Profiling is pure: the buffer is still zero.
        assert!(q.buf(0).words().iter().all(|&w| w == 0));
        // And the executed store reports exactly the profiled latency.
        assert_eq!(q.store(0, &conflict), p.serialisation());

        let p = q.write_profile(0, &spread);
        assert_eq!(p.serialisation(), 1);
        assert_eq!(p.conflict_cycles(), 0);
        assert_eq!(p.banks_touched(), 8);
        assert_eq!(q.update(0, QzOp::Add, &spread), 1);

        assert_eq!(BankProfile::default().serialisation(), 1);
    }

    #[test]
    fn reset_restores_power_on_state() {
        let mut q = small();
        q.conf(64, 64, 0);
        q.load_image(0, &[0xAB; 64]);
        q.store(1, &[(3, 7)]);
        q.reset();
        let fresh = QBuffers::new(q.config());
        assert_eq!(q.esize, fresh.esize);
        assert_eq!(q.eb, fresh.eb);
        assert_eq!(q.buf(0).words(), fresh.buf(0).words());
        assert_eq!(q.buf(1).words(), fresh.buf(1).words());
    }

    #[test]
    fn load_image_round_trips_bytes() {
        let mut q = small();
        let image: Vec<u8> = (0..64u8).collect();
        q.load_image(0, &image);
        assert_eq!(
            q.buf(0).read_segment(0, EncSize::E64),
            u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7])
        );
    }
}
