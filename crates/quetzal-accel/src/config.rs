//! QUETZAL hardware configuration points (paper §VI, Table I bottom).

/// Number of read ports per QBUFFER. Ports are implemented by data
/// replication (one SRAM copy per port, §IV-B.1), so area grows nearly
/// linearly with this value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PortCount {
    /// One read port (QZ_1P).
    P1,
    /// Two read ports (QZ_2P).
    P2,
    /// Four read ports (QZ_4P).
    P4,
    /// Eight read ports (QZ_8P — the configuration the paper selects).
    P8,
}

impl PortCount {
    /// The numeric port count.
    pub fn count(self) -> u32 {
        match self {
            PortCount::P1 => 1,
            PortCount::P2 => 2,
            PortCount::P4 => 4,
            PortCount::P8 => 8,
        }
    }

    /// All configurations, in Table-III order.
    pub fn all() -> [PortCount; 4] {
        [PortCount::P1, PortCount::P2, PortCount::P4, PortCount::P8]
    }
}

impl std::fmt::Display for PortCount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "QZ_{}P", self.count())
    }
}

/// A full QUETZAL hardware configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QzConfig {
    /// Read ports per QBUFFER.
    pub ports: PortCount,
    /// Capacity of each of the two QBUFFERs in KiB (the paper sizes them
    /// at 8 KB each, §VI).
    pub kib_per_buffer: usize,
}

impl QzConfig {
    /// The paper's chosen configuration: 8 read ports, 2 × 8 KB.
    pub const QZ_8P: QzConfig = QzConfig {
        ports: PortCount::P8,
        kib_per_buffer: 8,
    };

    /// Four-port variant (QZ_4P in Table III).
    pub const QZ_4P: QzConfig = QzConfig {
        ports: PortCount::P4,
        kib_per_buffer: 8,
    };

    /// Two-port variant (QZ_2P).
    pub const QZ_2P: QzConfig = QzConfig {
        ports: PortCount::P2,
        kib_per_buffer: 8,
    };

    /// Single-port variant (QZ_1P).
    pub const QZ_1P: QzConfig = QzConfig {
        ports: PortCount::P1,
        kib_per_buffer: 8,
    };

    /// Cycles to satisfy a full 8-lane vector of read requests:
    /// `8 / num_ports + 1` — the extra cycle is the slicing stage
    /// (paper §IV-C.1).
    pub fn read_latency(&self) -> u64 {
        (8 / self.ports.count() as u64) + 1
    }

    /// Capacity of one QBUFFER in bytes.
    pub fn bytes_per_buffer(&self) -> usize {
        self.kib_per_buffer * 1024
    }

    /// Maximum sequence length (in bases) one QBUFFER can hold with
    /// 2-bit encoding (the paper quotes up to 32.7 Kbp for 8 KB).
    pub fn max_encoded_bases(&self) -> usize {
        self.bytes_per_buffer() * 4
    }
}

impl Default for QzConfig {
    fn default() -> Self {
        QzConfig::QZ_8P
    }
}

impl std::fmt::Display for QzConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({} KiB x2)", self.ports, self.kib_per_buffer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_latencies_match_paper_table1() {
        // Table I: QZ_1P = 9 cycles, QZ_2P = 5 cycles, QZ_8P = 2 cycles.
        assert_eq!(QzConfig::QZ_1P.read_latency(), 9);
        assert_eq!(QzConfig::QZ_2P.read_latency(), 5);
        assert_eq!(QzConfig::QZ_4P.read_latency(), 3);
        assert_eq!(QzConfig::QZ_8P.read_latency(), 2);
    }

    #[test]
    fn capacity_covers_hifi_reads() {
        // §VI: each 8 KB buffer stores up to 32.7 Kbp with 2-bit encoding,
        // covering both Illumina (100 bp) and HiFi PacBio (10-30 Kbp).
        assert_eq!(QzConfig::QZ_8P.max_encoded_bases(), 32_768);
        assert!(QzConfig::QZ_8P.max_encoded_bases() >= 30_000);
    }

    #[test]
    fn port_counts() {
        let counts: Vec<u32> = PortCount::all().iter().map(|p| p.count()).collect();
        assert_eq!(counts, vec![1, 2, 4, 8]);
        assert_eq!(PortCount::P8.to_string(), "QZ_8P");
    }

    #[test]
    fn default_is_the_paper_pick() {
        assert_eq!(QzConfig::default(), QzConfig::QZ_8P);
    }
}
