//! Analytical area/power model regenerating the paper's Table III.
//!
//! The paper implements each configuration with Synopsys ICC2 at a 7 nm
//! node. We obviously cannot run place-and-route here, so this module
//! fits a simple structural model to the four published data points:
//! read ports are implemented by data replication (§IV-B.1), so each
//! additional port adds one SRAM copy per buffer plus one read-logic
//! instance, making area and power almost exactly linear in the port
//! count. The residual fixed term covers the encoder, the count ALUs and
//! the access-control logic.
//!
//! Published anchors (Table III + §I): QZ_1P = 0.013 mm², QZ_2P =
//! 0.026 mm², QZ_4P = 0.048 mm², QZ_8P = 0.097 mm² and 746 µW; the
//! QZ_8P instance adds 1.41 % to the A64FX SoC.

use crate::config::{PortCount, QzConfig};

/// Area of one A64FX core at 7 nm in mm² (from the paper's Table IV:
/// "Core+QUETZAL" = 2.89 mm² with QUETZAL = 0.097 mm²).
pub const A64FX_CORE_AREA_MM2: f64 = 2.79;

/// Effective per-core share of the A64FX SoC in mm², chosen so the
/// QZ_8P instance lands on the published 1.41 % SoC overhead.
pub const A64FX_SOC_AREA_PER_CORE_MM2: f64 = 0.097 / 0.0141;

/// Fitted per-port area increment in mm² (two SRAM copies + read logic).
const AREA_PER_PORT_MM2: f64 = 0.012;
/// Fitted fixed area in mm² (encoder, count ALUs, access control).
const AREA_FIXED_MM2: f64 = 0.001;
/// Fitted per-port power increment in µW.
const POWER_PER_PORT_UW: f64 = 92.0;
/// Fitted fixed power in µW.
const POWER_FIXED_UW: f64 = 10.0;

/// Post-place-and-route estimates for one QUETZAL configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaReport {
    /// The configuration.
    pub config: QzConfig,
    /// Total accelerator area in mm² (7 nm).
    pub area_mm2: f64,
    /// Total accelerator power in µW.
    pub power_uw: f64,
    /// Area overhead relative to one A64FX core (Table III column D).
    pub core_overhead_pct: f64,
    /// Area overhead relative to the SoC with one instance per core
    /// (Table III column E).
    pub soc_overhead_pct: f64,
}

/// Produces the Table III row for a configuration.
pub fn area_report(config: QzConfig) -> AreaReport {
    let ports = config.ports.count() as f64;
    // The model is calibrated for 8 KiB buffers; other capacities scale
    // the SRAM (per-port) term proportionally.
    let capacity_scale = config.kib_per_buffer as f64 / 8.0;
    let area_mm2 = AREA_PER_PORT_MM2 * ports * capacity_scale + AREA_FIXED_MM2;
    let power_uw = POWER_PER_PORT_UW * ports * capacity_scale + POWER_FIXED_UW;
    AreaReport {
        config,
        area_mm2,
        power_uw,
        core_overhead_pct: 100.0 * area_mm2 / A64FX_CORE_AREA_MM2,
        soc_overhead_pct: 100.0 * area_mm2 / A64FX_SOC_AREA_PER_CORE_MM2,
    }
}

/// All four Table III rows, in order.
pub fn table3() -> Vec<AreaReport> {
    PortCount::all()
        .into_iter()
        .map(|ports| {
            area_report(QzConfig {
                ports,
                kib_per_buffer: 8,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn model_hits_published_areas_within_tolerance() {
        // Published: 0.013 / 0.026 / 0.048 / 0.097 mm².
        let rows = table3();
        let published = [0.013, 0.026, 0.048, 0.097];
        for (row, &want) in rows.iter().zip(&published) {
            assert!(
                close(row.area_mm2, want, 0.003),
                "{}: model {} vs published {}",
                row.config,
                row.area_mm2,
                want
            );
        }
    }

    #[test]
    fn qz8p_power_near_published() {
        let r = area_report(QzConfig::QZ_8P);
        assert!(close(r.power_uw, 746.0, 30.0), "power {}", r.power_uw);
    }

    #[test]
    fn qz8p_soc_overhead_near_1_4_percent() {
        let r = area_report(QzConfig::QZ_8P);
        assert!(
            close(r.soc_overhead_pct, 1.41, 0.05),
            "soc overhead {}",
            r.soc_overhead_pct
        );
    }

    #[test]
    fn area_monotonic_in_ports() {
        let rows = table3();
        for w in rows.windows(2) {
            assert!(w[0].area_mm2 < w[1].area_mm2);
            assert!(w[0].power_uw < w[1].power_uw);
        }
    }

    #[test]
    fn capacity_scales_sram_term() {
        let big = area_report(QzConfig {
            ports: PortCount::P8,
            kib_per_buffer: 16,
        });
        let base = area_report(QzConfig::QZ_8P);
        assert!(big.area_mm2 > 1.8 * base.area_mm2 - AREA_FIXED_MM2);
    }
}
