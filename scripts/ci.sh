#!/usr/bin/env bash
# The repository's CI pipeline, runnable locally: formatting, offline
# release build, full test suite, and a smoke run of the experiment
# harness. Everything runs with --offline — the workspace has zero
# external dependencies, so a clean checkout plus a Rust toolchain is
# all CI needs.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --all-targets --offline --workspace -- -D warnings

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> fault-injection sweep (release + debug assertions, fixed seed)"
# Release speed with overflow/invariant checks live: any panic escaping
# the machine boundary — not a typed SimError — fails this step.
CARGO_PROFILE_RELEASE_DEBUG_ASSERTIONS=true \
QUETZAL_FAULT_CASES=12000 QUETZAL_FAULT_SEED=0xF4417 \
    cargo test -q --offline --release -p quetzal-integration \
    --test fault_injection

echo "==> qzverify: every in-tree kernel verifies statically Clean"
# Replays the experiment grid with the build observer installed and
# runs quetzal-verify over every program it stages; any verdict below
# Clean (warnings included) fails the gate.
QUETZAL_SCALE=0.25 \
    cargo run -q --release --offline -p quetzal-bench --bin qzverify \
    > /dev/null

echo "==> smoke: run_all at reduced scale, 1 vs N threads byte-identical"
out_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir"' EXIT
QUETZAL_SCALE=0.25 QUETZAL_THREADS=1 \
    cargo run -q --release --offline -p quetzal-bench --bin run_all \
    > "$out_dir/t1.txt"
QUETZAL_SCALE=0.25 QUETZAL_THREADS=4 \
    cargo run -q --release --offline -p quetzal-bench --bin run_all \
    > "$out_dir/t4.txt"
cmp "$out_dir/t1.txt" "$out_dir/t4.txt" \
    || { echo "FAIL: run_all output depends on QUETZAL_THREADS"; exit 1; }

echo "==> smoke: trace_run probed replay + Chrome-trace JSON"
QUETZAL_SCALE=0.25 \
    cargo run -q --release --offline -p quetzal-bench --bin trace_run -- \
    wfa vec --top 5 --chrome "$out_dir/trace.json" > "$out_dir/trace.txt"
# trace_run validates the emitted JSON with the in-tree strict parser
# (quetzal_trace::json) before writing and exits non-zero on failure;
# here we only check that the analysis and the artifact both landed.
grep -q "CPI stack" "$out_dir/trace.txt" \
    || { echo "FAIL: trace_run printed no CPI stack"; exit 1; }
test -s "$out_dir/trace.json" \
    || { echo "FAIL: trace_run wrote no Chrome trace"; exit 1; }

echo "==> committed results_run_all.txt is fresh (default scale)"
QUETZAL_THREADS=4 \
    cargo run -q --release --offline -p quetzal-bench --bin run_all -- --cpi-stacks \
    > "$out_dir/full.txt" 2>/dev/null
cmp results_run_all.txt "$out_dir/full.txt" \
    || { echo "FAIL: results_run_all.txt is stale; regenerate with run_all"; exit 1; }

echo "==> perf trajectory: BENCH_uarch.json (simulated MIPS)"
cargo run -q --release --offline -p quetzal-bench --bin bench_uarch \
    > BENCH_uarch.json

echo "CI OK"
