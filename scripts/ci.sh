#!/usr/bin/env bash
# The repository's CI pipeline, runnable locally: formatting, offline
# release build, full test suite, and a smoke run of the experiment
# harness. Everything runs with --offline — the workspace has zero
# external dependencies, so a clean checkout plus a Rust toolchain is
# all CI needs.
set -euo pipefail
cd "$(dirname "$0")/.."

# Keep glibc's allocator off the syscall path: sandboxed CI runners
# (gVisor-style) make brk/mmap orders of magnitude slower than native,
# which turns malloc heap-trim churn into the dominant cost of the
# simulator's per-pair setup. Never return freed heap to the kernel and
# never route large allocations through mmap; both are pure wall-clock
# wins here and no-ops on ordinary kernels.
export MALLOC_TRIM_THRESHOLD_=-1
export MALLOC_MMAP_THRESHOLD_=1073741824
export MALLOC_TOP_PAD_=134217728

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --all-targets --offline --workspace -- -D warnings

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> fault-injection sweep (release + debug assertions, fixed seed)"
# Release speed with overflow/invariant checks live: any panic escaping
# the machine boundary — not a typed SimError — fails this step. Since
# PR 6 every case is also replayed on the compiled functional tier and
# must match the cycle-level outcome bit-exactly (or raise the same
# typed error), so this sweep doubles as a 12k-case differential gate.
CARGO_PROFILE_RELEASE_DEBUG_ASSERTIONS=true \
QUETZAL_FAULT_CASES=12000 QUETZAL_FAULT_SEED=0xF4417 \
    cargo test -q --offline --release -p quetzal-integration \
    --test fault_injection

echo "==> functional tier: differential oracle vs cycle-level engine"
# The Fig. 3 grid replayed on both execution engines with per-pair
# architectural-state equality, plus the exhaustive 116k-pair oracle
# sweep on the functional tier (inside --test properties).
CARGO_PROFILE_RELEASE_DEBUG_ASSERTIONS=true \
    cargo test -q --offline --release -p quetzal-integration \
    --test functional_equiv

echo "==> qzverify: every in-tree kernel verifies statically Clean"
# Replays the experiment grid with the build observer installed and
# runs quetzal-verify over every program it stages; any verdict below
# Clean (warnings included) fails the gate.
QUETZAL_SCALE=0.25 \
    cargo run -q --release --offline -p quetzal-bench --bin qzverify \
    > /dev/null

echo "==> smoke: run_all at reduced scale, 1 vs N threads byte-identical"
out_dir="$(mktemp -d)"
trap '[ -n "${served_pid:-}" ] && kill "$served_pid" 2>/dev/null; rm -rf "$out_dir"' EXIT
QUETZAL_SCALE=0.25 QUETZAL_THREADS=1 \
    cargo run -q --release --offline -p quetzal-bench --bin run_all \
    > "$out_dir/t1.txt"
QUETZAL_SCALE=0.25 QUETZAL_THREADS=4 \
    cargo run -q --release --offline -p quetzal-bench --bin run_all \
    > "$out_dir/t4.txt"
cmp "$out_dir/t1.txt" "$out_dir/t4.txt" \
    || { echo "FAIL: run_all output depends on QUETZAL_THREADS"; exit 1; }

echo "==> smoke: design_space full grid at reduced scale, deterministic"
# The 72-point OoO design-space sweep (width x QZ ports x ROB x store
# window) — all cells are simulated-cycle ratios, so both the table and
# the JSON artifact must be byte-identical across thread counts.
QUETZAL_SCALE=0.25 QUETZAL_THREADS=1 \
    cargo run -q --release --offline -p quetzal-bench --bin design_space -- \
    --json "$out_dir/ds1.json" > "$out_dir/ds1.txt"
QUETZAL_SCALE=0.25 QUETZAL_THREADS=4 \
    cargo run -q --release --offline -p quetzal-bench --bin design_space -- \
    --json "$out_dir/ds4.json" > "$out_dir/ds4.txt"
cmp "$out_dir/ds1.txt" "$out_dir/ds4.txt" \
    || { echo "FAIL: design_space table depends on QUETZAL_THREADS"; exit 1; }
cmp "$out_dir/ds1.json" "$out_dir/ds4.json" \
    || { echo "FAIL: design_space JSON depends on QUETZAL_THREADS"; exit 1; }
grep -q '"benchmark": "uarch-design-space"' "$out_dir/ds1.json" \
    || { echo "FAIL: design_space wrote no JSON artifact"; exit 1; }

echo "==> smoke: qzserved daemon loopback, byte-identical to offline"
# Alignment-as-a-service: start the daemon on an ephemeral port, submit
# the same align and fault jobs through qzclient and through the
# in-process --offline path, and require byte-identical reports. The
# fault job must show verifier-gated admission (typed `rejected`
# frames), /stats must answer, and the shutdown frame must produce a
# clean daemon exit.
./target/release/qzserved --listen 127.0.0.1:0 > "$out_dir/qzserved.log" &
served_pid=$!
served_addr=""
for _ in $(seq 1 100); do
    served_addr="$(sed -n 's/^qzserved listening on //p' "$out_dir/qzserved.log")"
    [ -n "$served_addr" ] && break
    sleep 0.1
done
[ -n "$served_addr" ] \
    || { echo "FAIL: qzserved never reported a listen address"; exit 1; }
./target/release/qzclient submit --addr "$served_addr" --pairs 4 \
    > "$out_dir/served_align.txt" 2>/dev/null
./target/release/qzclient submit --offline --pairs 4 \
    > "$out_dir/offline_align.txt" 2>/dev/null
cmp "$out_dir/served_align.txt" "$out_dir/offline_align.txt" \
    || { echo "FAIL: served align report differs from offline BatchRunner"; exit 1; }
./target/release/qzclient fault --addr "$served_addr" --cases 24 \
    > "$out_dir/served_fault.txt" 2>/dev/null
./target/release/qzclient fault --offline --cases 24 \
    > "$out_dir/offline_fault.txt" 2>/dev/null
cmp "$out_dir/served_fault.txt" "$out_dir/offline_fault.txt" \
    || { echo "FAIL: served fault report differs from offline BatchRunner"; exit 1; }
grep -q '"cause":"rejected"' "$out_dir/served_fault.txt" \
    || { echo "FAIL: fault smoke exercised no verifier-gated rejection"; exit 1; }
./target/release/qzclient stats --addr "$served_addr" > "$out_dir/served_stats.json"
grep -q '"jobs":{"accepted":2' "$out_dir/served_stats.json" \
    || { echo "FAIL: /stats did not account for both smoke jobs"; exit 1; }
./target/release/qzclient shutdown --addr "$served_addr" > /dev/null
wait "$served_pid" \
    || { echo "FAIL: qzserved did not exit cleanly after shutdown"; exit 1; }
served_pid=""

echo "==> smoke: qzingest crash/resume, byte-identical at 1 and 4 threads"
# Crash-safe ingestion: stage a pair file, run it uninterrupted, then
# kill a second run at a shard boundary (real process death, exit 137)
# and a third mid-manifest-write (torn manifest on disk), resume both,
# and require the assembled reports byte-identical to the uninterrupted
# run — with the killed run and its resume at different thread counts.
./target/release/qzingest stage --dataset 100bp_1 --pairs 48 \
    --out "$out_dir/pairs.tsv" 2>/dev/null
QUETZAL_THREADS=1 ./target/release/qzingest run --input "$out_dir/pairs.tsv" \
    --ckpt "$out_dir/ck-fresh" --output "$out_dir/ingest-fresh.out" \
    --shard 8 --quiet 2>/dev/null
rc=0
QUETZAL_THREADS=1 ./target/release/qzingest run --input "$out_dir/pairs.tsv" \
    --ckpt "$out_dir/ck-kill" --shard 8 --quiet \
    --crash-after-shard 2 2>/dev/null || rc=$?
[ "$rc" -eq 137 ] \
    || { echo "FAIL: injected shard-boundary crash exited $rc, not 137"; exit 1; }
QUETZAL_THREADS=4 ./target/release/qzingest run --input "$out_dir/pairs.tsv" \
    --ckpt "$out_dir/ck-kill" --output "$out_dir/ingest-resumed.out" \
    --shard 8 --quiet 2> "$out_dir/ingest-resume.log"
cmp "$out_dir/ingest-fresh.out" "$out_dir/ingest-resumed.out" \
    || { echo "FAIL: resumed ingest differs from uninterrupted run"; exit 1; }
grep -q "3 resumed" "$out_dir/ingest-resume.log" \
    || { echo "FAIL: resume re-ran shards instead of validating checkpoints"; exit 1; }
rc=0
QUETZAL_THREADS=4 ./target/release/qzingest run --input "$out_dir/pairs.tsv" \
    --ckpt "$out_dir/ck-torn" --shard 8 --quiet \
    --crash-mid-manifest 1 2>/dev/null || rc=$?
[ "$rc" -eq 137 ] \
    || { echo "FAIL: injected mid-manifest crash exited $rc, not 137"; exit 1; }
QUETZAL_THREADS=1 ./target/release/qzingest run --input "$out_dir/pairs.tsv" \
    --ckpt "$out_dir/ck-torn" --output "$out_dir/ingest-torn.out" \
    --shard 8 --quiet 2> "$out_dir/ingest-torn.log"
cmp "$out_dir/ingest-fresh.out" "$out_dir/ingest-torn.out" \
    || { echo "FAIL: torn-manifest recovery differs from uninterrupted run"; exit 1; }
grep -q "1 torn" "$out_dir/ingest-torn.log" \
    || { echo "FAIL: recovery never flagged the torn manifest"; exit 1; }

echo "==> smoke: trace_run probed replay + Chrome-trace JSON"
QUETZAL_SCALE=0.25 \
    cargo run -q --release --offline -p quetzal-bench --bin trace_run -- \
    wfa vec --top 5 --chrome "$out_dir/trace.json" > "$out_dir/trace.txt"
# trace_run validates the emitted JSON with the in-tree strict parser
# (quetzal_trace::json) before writing and exits non-zero on failure;
# here we only check that the analysis and the artifact both landed.
grep -q "CPI stack" "$out_dir/trace.txt" \
    || { echo "FAIL: trace_run printed no CPI stack"; exit 1; }
test -s "$out_dir/trace.json" \
    || { echo "FAIL: trace_run wrote no Chrome trace"; exit 1; }

echo "==> committed results_run_all.txt is fresh (default scale)"
QUETZAL_THREADS=4 \
    cargo run -q --release --offline -p quetzal-bench --bin run_all -- --cpi-stacks \
    > "$out_dir/full.txt" 2>/dev/null
cmp results_run_all.txt "$out_dir/full.txt" \
    || { echo "FAIL: results_run_all.txt is stale; regenerate with run_all"; exit 1; }

echo "==> perf trajectory: BENCH_uarch.json (simulated MIPS, both engines)"
cargo run -q --release --offline -p quetzal-bench --bin bench_uarch \
    > BENCH_uarch.json

echo "==> cycle engine clears the sim-MIPS floor (timing-wheel perf gate)"
# The event-driven timing wheel must not cost cycle-engine throughput
# at the default config. The floor is set well below the measured
# geomean (12-20 sim-MIPS depending on host load) so it only trips on
# structural regressions — e.g. reintroducing a per-retire cost that
# scales with the configured widths — not on a slow runner.
awk '
  /"geomean_sim_mips":/ {
    gsub(/[^0-9.]/, "", $2); geo = $2 + 0; found = 1
  }
  END {
    if (!found) { print "FAIL: no geomean_sim_mips in BENCH_uarch.json"; exit 1 }
    if (geo < 6.0) {
      printf "FAIL: cycle engine at %.2f geomean sim-MIPS (floor: 6.0)\n", geo
      exit 1
    }
    printf "cycle engine geomean: %.2f sim-MIPS (floor: 6.0)\n", geo
  }
' BENCH_uarch.json

echo "==> functional tier is fast enough to be worth having (>= 2x geomean)"
# The whole point of the no-timing-model tier: it must beat the
# cycle-level engine by at least 2x geomean simulated MIPS on the
# Fig. 3 / Fig. 4 kernel grid, or it is dead weight.
awk '
  /"functional_speedup_geomean"/ {
    gsub(/[^0-9.]/, "", $2); speedup = $2 + 0; found = 1
  }
  END {
    if (!found) { print "FAIL: no functional_speedup_geomean in BENCH_uarch.json"; exit 1 }
    if (speedup < 2.0) {
      printf "FAIL: functional tier only %.2fx over cycle-level (need >= 2x)\n", speedup
      exit 1
    }
    printf "functional tier speedup: %.2fx (gate: >= 2x)\n", speedup
  }
' BENCH_uarch.json

echo "CI OK"
